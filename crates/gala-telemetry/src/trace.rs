//! Structured trace events and the sinks that consume them.
//!
//! The Louvain and multi-GPU drivers in `gala-core` emit one
//! [`TraceEvent`] per interesting moment of a run — run start/end, each
//! BSP superstep with its move/prune counts and per-phase memory tallies,
//! and each inter-device synchronisation with the dense-vs-sparse decision
//! and modelled byte volume. Events flow into a [`TraceSink`]:
//!
//! * [`NullSink`] — reports `enabled() == false`, so instrumented code
//!   skips even *building* events; tracing off costs one branch.
//! * [`VecSink`] — buffers events in memory (tests, programmatic use).
//! * [`JsonlSink`] — writes one compact JSON object per line, the format
//!   `gala detect --trace out.jsonl` produces.

use std::io::Write;

use gala_gpu::memory::{ComponentCharges, CostModel, MemTally, COMPONENT_NAMES};
use gala_gpu::profile::SpanRecord;

use crate::json::Value;
use crate::metrics::MetricsRegistry;
use crate::SCHEMA_VERSION;

/// One structured event in a run's trace.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// Emitted once when a driver starts.
    RunStart {
        /// Driver name (`"louvain"`, `"multi-gpu"`, …).
        algorithm: String,
        /// Vertex count of the input graph.
        n: u64,
        /// Edge count of the input graph.
        m: u64,
        /// Number of simulated devices (1 for single-GPU runs).
        devices: u32,
    },
    /// One BSP superstep of Louvain phase 1.
    Superstep {
        /// Coarsening round (phase-1/phase-2 pass) this superstep is in.
        round: u32,
        /// Superstep index within the round, from 0.
        superstep: u32,
        /// Vertices evaluated this superstep.
        active: u64,
        /// Vertices that changed community.
        moved: u64,
        /// Vertices skipped by the pruning strategy.
        pruned: u64,
        /// Vertices evaluated but kept in place.
        unmoved: u64,
        /// Modularity after the superstep's moves were applied.
        modularity: f64,
        /// Modularity gained over the previous superstep.
        delta_q: f64,
        /// Memory traffic of the decide-and-move kernel.
        decide_tally: MemTally,
        /// Memory traffic of the community-weight update.
        weight_tally: MemTally,
        /// Shared-memory hashtable occupancy (fraction of shared buckets
        /// holding a key); 0 for kernels without hashtables.
        hash_occupancy: f64,
        /// Upserts evicted from shared to global hash buckets.
        hash_evictions: u64,
    },
    /// One inter-device synchronisation (multi-GPU runs).
    Sync {
        /// Superstep index the sync follows.
        superstep: u32,
        /// `"dense"` or `"sparse"` — the mode actually used.
        mode: String,
        /// Modelled bytes exchanged per device under that mode.
        bytes: u64,
        /// Modelled communication time in microseconds.
        comm_us: f64,
        /// Devices participating.
        devices: u32,
    },
    /// A profiling span tree for one superstep or phase-2 pass: nested
    /// per-kernel spans (shuffle vs. hash, delta-update, contraction, sync)
    /// with memory tallies — including branch-divergence and
    /// memory-coalescing counters — and free-form named counters.
    Span {
        /// Coarsening round the spans belong to.
        round: u32,
        /// Superstep index within the round (for `"contract"` trees, one
        /// past the round's last superstep).
        superstep: u32,
        /// Which driver phase produced the tree (`"phase1"`, `"contract"`).
        phase: String,
        /// Root of the span tree; its children are the phase's top-level
        /// spans (`classify`, `decide`, `apply`, …).
        root: SpanRecord,
    },
    /// Per-span cost attribution for one phase: every span of the phase's
    /// tree flattened to a slash-joined path with its *self* charge
    /// decomposed into [`ComponentCharges`]. Sim backends charge components
    /// from the span's [`MemTally`] (unit `"cycles"`, summing exactly to
    /// the span's `self_cycles`); native backends charge wall time (unit
    /// `"ns"`, one bucket per span). Schema 4+.
    Profile {
        /// Coarsening round the spans belong to.
        round: u32,
        /// Superstep index within the round (for `"contract"` trees, one
        /// past the round's last superstep).
        superstep: u32,
        /// Which driver phase produced the tree (`"phase1"`, `"contract"`).
        phase: String,
        /// Backend that executed the phase (`"sim"`, `"native"`, `"host"`).
        backend: String,
        /// Unit of `total` and every component: `"cycles"` or `"ns"`.
        unit: String,
        /// Flattened span rows, pre-order.
        spans: Vec<ProfileSpan>,
    },
    /// An algorithm-level metrics snapshot: a [`MetricsRegistry`] of
    /// counters, gauges and log2 histograms covering quantities the span
    /// and superstep events cannot — pruning-audit results, kernel
    /// routing splits with degree distributions, hashtable level
    /// statistics, dense/sparse sync traffic. Schema 3+.
    Metrics {
        /// Coarsening round the snapshot covers (0 for whole-run scopes).
        round: u32,
        /// What the snapshot aggregates over (`"phase1"`, `"sync"`).
        scope: String,
        /// The recorded metrics.
        registry: MetricsRegistry,
    },
    /// End of one coarsening round.
    RoundEnd {
        /// Round index, from 0.
        round: u32,
        /// Supersteps the round took.
        supersteps: u32,
        /// Modularity at the end of the round.
        modularity: f64,
        /// Communities remaining after aggregation.
        communities: u64,
    },
    /// Emitted once when a driver finishes.
    RunEnd {
        /// Final modularity.
        modularity: f64,
        /// Coarsening rounds executed.
        rounds: u32,
        /// Total simulated cycles across all phases.
        total_cycles: f64,
    },
    /// One structured flight-recorder log line, drained from the
    /// recorder's ring (see `crate::recorder`). Schema 5+.
    Log {
        /// Monotonic sequence number assigned by the ring.
        seq: u64,
        /// Microseconds since the recorder was initialised.
        elapsed_us: u64,
        /// Severity (`"error"`, `"warn"`, `"info"`, `"debug"`).
        level: String,
        /// Component that produced the line.
        scope: String,
        /// Human-readable message.
        message: String,
        /// Structured numeric payload, in insertion order.
        fields: Vec<(String, f64)>,
    },
    /// A bounded-frequency progress snapshot from a live driver: where the
    /// run is right now, cheap enough to stream while it executes. Schema
    /// 5+.
    Progress {
        /// Driver name (`"louvain"`, `"multi-gpu"`, `"stream"`, …).
        driver: String,
        /// Coarsening round (or chunk index for ingestion).
        round: u32,
        /// Phase within the round (`"phase1"`, `"contract"`, `"ingest"`).
        phase: String,
        /// Superstep within the phase, from 0.
        superstep: u32,
        /// Modularity at snapshot time (0 when not yet defined).
        modularity: f64,
        /// Fraction of vertices still active (0 when not applicable).
        active_frac: f64,
        /// Fraction of evaluated vertices that moved this superstep.
        moved_frac: f64,
        /// Arcs processed so far in this phase.
        arcs: u64,
        /// Resident set size at snapshot time; 0 when no probe exists.
        rss_bytes: u64,
    },
}

/// One span's row inside a [`TraceEvent::Profile`]: its position in the
/// tree as a slash-joined path plus its *self* charge (children excluded)
/// decomposed into components.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileSpan {
    /// Slash-joined span names from the tree root down (the unnamed root
    /// itself is omitted), e.g. `"superstep/decide/hash"`.
    pub path: String,
    /// Times the span was entered.
    pub invocations: u64,
    /// The span's self charge in the event's `unit`; always equals
    /// `components.total()`.
    pub total: f64,
    /// Component decomposition of `total`.
    pub components: ComponentCharges,
}

/// Flattens a sim span tree into [`ProfileSpan`] rows, charging each
/// span's own [`MemTally`] through `cost`. With the default integer-weight
/// [`CostModel`] every row's `total` equals the span's `self_cycles()`
/// bit-for-bit.
pub fn profile_spans(root: &SpanRecord, cost: &CostModel) -> Vec<ProfileSpan> {
    let mut out = Vec::new();
    for child in &root.children {
        collect_profile(child, "", &mut out, &|span| span.components(cost));
    }
    out
}

/// Flattens a native span tree into [`ProfileSpan`] rows, charging each
/// span's `elapsed_ns` counter as wall time (`sync` spans charge the sync
/// component, everything else compute).
pub fn profile_spans_wall(root: &SpanRecord) -> Vec<ProfileSpan> {
    let mut out = Vec::new();
    for child in &root.children {
        collect_profile(child, "", &mut out, &|span| span.components_wall());
    }
    out
}

fn collect_profile(
    span: &SpanRecord,
    prefix: &str,
    out: &mut Vec<ProfileSpan>,
    charge: &dyn Fn(&SpanRecord) -> ComponentCharges,
) {
    let path = if prefix.is_empty() {
        span.name.clone()
    } else {
        format!("{prefix}/{}", span.name)
    };
    let components = charge(span);
    out.push(ProfileSpan {
        path: path.clone(),
        invocations: span.invocations,
        total: components.total(),
        components,
    });
    for child in &span.children {
        collect_profile(child, &path, out, charge);
    }
}

/// Serialises [`ComponentCharges`] as a flat JSON object, one key per
/// component in [`COMPONENT_NAMES`] order.
pub fn components_to_json(c: &ComponentCharges) -> Value {
    COMPONENT_NAMES
        .into_iter()
        .fold(Value::object(), |v, name| {
            v.set(name, c.get(name).unwrap_or(0.0))
        })
}

/// Parses [`ComponentCharges`] back from the object [`components_to_json`]
/// writes. Returns `None` when any component is missing or non-numeric.
pub fn components_from_json(v: &Value) -> Option<ComponentCharges> {
    let mut c = ComponentCharges::default();
    for name in COMPONENT_NAMES {
        c.set(name, v.get(name)?.as_f64()?);
    }
    Some(c)
}

/// Serialises one [`ProfileSpan`] row.
pub fn profile_span_to_json(span: &ProfileSpan) -> Value {
    Value::object()
        .set("path", span.path.as_str())
        .set("invocations", span.invocations)
        .set("total", span.total)
        .set("components", components_to_json(&span.components))
}

/// Parses a [`ProfileSpan`] back from the object [`profile_span_to_json`]
/// writes. Returns `None` on any structural mismatch.
pub fn profile_span_from_json(v: &Value) -> Option<ProfileSpan> {
    Some(ProfileSpan {
        path: v.get("path")?.as_str()?.to_string(),
        invocations: v.get("invocations")?.as_u64()?,
        total: v.get("total")?.as_f64()?,
        components: components_from_json(v.get("components")?)?,
    })
}

/// Serialises a [`MemTally`] as a flat JSON object.
pub fn tally_to_json(t: &MemTally) -> Value {
    Value::object()
        .set("register_ops", t.register_ops)
        .set("shared_loads", t.shared_loads)
        .set("shared_stores", t.shared_stores)
        .set("global_loads", t.global_loads)
        .set("global_stores", t.global_stores)
        .set("shared_atomics", t.shared_atomics)
        .set("global_atomics", t.global_atomics)
        .set("warp_primitives", t.warp_primitives)
        .set("simt_steps", t.simt_steps)
        .set("simt_active_lanes", t.simt_active_lanes)
        .set("simt_serialized", t.simt_serialized)
        .set("coalesce_requests", t.coalesce_requests)
        .set("coalesce_transactions", t.coalesce_transactions)
        .set("coalesce_ideal", t.coalesce_ideal)
}

/// Parses a [`MemTally`] back from the object [`tally_to_json`] writes.
/// Returns `None` when any field is missing or non-numeric.
pub fn tally_from_json(v: &Value) -> Option<MemTally> {
    let f = |key: &str| v.get(key)?.as_u64();
    Some(MemTally {
        register_ops: f("register_ops")?,
        shared_loads: f("shared_loads")?,
        shared_stores: f("shared_stores")?,
        global_loads: f("global_loads")?,
        global_stores: f("global_stores")?,
        shared_atomics: f("shared_atomics")?,
        global_atomics: f("global_atomics")?,
        warp_primitives: f("warp_primitives")?,
        simt_steps: f("simt_steps")?,
        simt_active_lanes: f("simt_active_lanes")?,
        simt_serialized: f("simt_serialized")?,
        coalesce_requests: f("coalesce_requests")?,
        coalesce_transactions: f("coalesce_transactions")?,
        coalesce_ideal: f("coalesce_ideal")?,
    })
}

/// Parses a [`SpanRecord`] tree back from the object [`span_to_json`]
/// writes. Returns `None` on any structural mismatch.
pub fn span_from_json(v: &Value) -> Option<SpanRecord> {
    let counters = v
        .get("counters")?
        .as_object()?
        .iter()
        .map(|(k, n)| Some((k.clone(), n.as_u64()?)))
        .collect::<Option<_>>()?;
    let children = v
        .get("children")?
        .as_array()?
        .iter()
        .map(span_from_json)
        .collect::<Option<_>>()?;
    Some(SpanRecord {
        name: v.get("name")?.as_str()?.to_string(),
        invocations: v.get("invocations")?.as_u64()?,
        tally: tally_from_json(v.get("tally")?)?,
        counters,
        children,
    })
}

/// Serialises a profiling span tree ([`SpanRecord`]) recursively.
pub fn span_to_json(span: &SpanRecord) -> Value {
    let counters = span
        .counters
        .iter()
        .fold(Value::object(), |v, (k, n)| v.set(k, *n));
    Value::object()
        .set("name", span.name.as_str())
        .set("invocations", span.invocations)
        .set("tally", tally_to_json(&span.tally))
        .set("counters", counters)
        .set(
            "children",
            Value::Array(span.children.iter().map(span_to_json).collect()),
        )
}

impl TraceEvent {
    /// The event's `"event"` discriminator string.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "run_start",
            TraceEvent::Superstep { .. } => "superstep",
            TraceEvent::Sync { .. } => "sync",
            TraceEvent::Span { .. } => "span",
            TraceEvent::Profile { .. } => "profile",
            TraceEvent::Metrics { .. } => "metrics",
            TraceEvent::RoundEnd { .. } => "round_end",
            TraceEvent::RunEnd { .. } => "run_end",
            TraceEvent::Log { .. } => "log",
            TraceEvent::Progress { .. } => "progress",
        }
    }

    /// Serialises the event to the documented JSON object form. Every
    /// object carries `"event"` and `"schema"` so consumers can dispatch
    /// and version-check line by line.
    pub fn to_json(&self) -> Value {
        let base = Value::object()
            .set("event", self.kind())
            .set("schema", SCHEMA_VERSION);
        match self {
            TraceEvent::RunStart {
                algorithm,
                n,
                m,
                devices,
            } => base
                .set("algorithm", algorithm.as_str())
                .set("n", *n)
                .set("m", *m)
                .set("devices", *devices),
            TraceEvent::Superstep {
                round,
                superstep,
                active,
                moved,
                pruned,
                unmoved,
                modularity,
                delta_q,
                decide_tally,
                weight_tally,
                hash_occupancy,
                hash_evictions,
            } => base
                .set("round", *round)
                .set("superstep", *superstep)
                .set("active", *active)
                .set("moved", *moved)
                .set("pruned", *pruned)
                .set("unmoved", *unmoved)
                .set("modularity", *modularity)
                .set("delta_q", *delta_q)
                .set("decide_tally", tally_to_json(decide_tally))
                .set("weight_tally", tally_to_json(weight_tally))
                .set("hash_occupancy", *hash_occupancy)
                .set("hash_evictions", *hash_evictions),
            TraceEvent::Sync {
                superstep,
                mode,
                bytes,
                comm_us,
                devices,
            } => base
                .set("superstep", *superstep)
                .set("mode", mode.as_str())
                .set("bytes", *bytes)
                .set("comm_us", *comm_us)
                .set("devices", *devices),
            TraceEvent::Span {
                round,
                superstep,
                phase,
                root,
            } => base
                .set("round", *round)
                .set("superstep", *superstep)
                .set("phase", phase.as_str())
                .set("root", span_to_json(root)),
            TraceEvent::Profile {
                round,
                superstep,
                phase,
                backend,
                unit,
                spans,
            } => base
                .set("round", *round)
                .set("superstep", *superstep)
                .set("phase", phase.as_str())
                .set("backend", backend.as_str())
                .set("unit", unit.as_str())
                .set(
                    "spans",
                    Value::Array(spans.iter().map(profile_span_to_json).collect()),
                ),
            TraceEvent::Metrics {
                round,
                scope,
                registry,
            } => base
                .set("round", *round)
                .set("scope", scope.as_str())
                .set("registry", registry.to_json()),
            TraceEvent::RoundEnd {
                round,
                supersteps,
                modularity,
                communities,
            } => base
                .set("round", *round)
                .set("supersteps", *supersteps)
                .set("modularity", *modularity)
                .set("communities", *communities),
            TraceEvent::RunEnd {
                modularity,
                rounds,
                total_cycles,
            } => base
                .set("modularity", *modularity)
                .set("rounds", *rounds)
                .set("total_cycles", *total_cycles),
            TraceEvent::Log {
                seq,
                elapsed_us,
                level,
                scope,
                message,
                fields,
            } => base
                .set("seq", *seq)
                .set("elapsed_us", *elapsed_us)
                .set("level", level.as_str())
                .set("scope", scope.as_str())
                .set("message", message.as_str())
                .set(
                    "fields",
                    fields
                        .iter()
                        .fold(Value::object(), |v, (k, n)| v.set(k, *n)),
                ),
            TraceEvent::Progress {
                driver,
                round,
                phase,
                superstep,
                modularity,
                active_frac,
                moved_frac,
                arcs,
                rss_bytes,
            } => base
                .set("driver", driver.as_str())
                .set("round", *round)
                .set("phase", phase.as_str())
                .set("superstep", *superstep)
                .set("modularity", *modularity)
                .set("active_frac", *active_frac)
                .set("moved_frac", *moved_frac)
                .set("arcs", *arcs)
                .set("rss_bytes", *rss_bytes),
        }
    }
}

/// Consumer of [`TraceEvent`]s.
///
/// Instrumented code must gate on [`TraceSink::enabled`] before
/// constructing events:
///
/// ```ignore
/// if sink.enabled() {
///     sink.emit(TraceEvent::RunEnd { .. });
/// }
/// ```
///
/// so a disabled sink costs one branch per emission site and nothing else.
pub trait TraceSink {
    /// Whether events should be built and emitted at all.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event. Never called by well-behaved instrumentation
    /// when [`TraceSink::enabled`] is false.
    fn emit(&mut self, event: TraceEvent);
}

/// The disabled sink: `enabled()` is false and `emit` panics in debug
/// builds (instrumentation must check `enabled()` first).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&mut self, _event: TraceEvent) {
        debug_assert!(false, "emit on a disabled sink: gate on sink.enabled()");
    }
}

/// Buffers events in memory.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    /// Every event emitted so far, in order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecSink {
    fn emit(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Writes one compact JSON object per event, newline-terminated (JSONL).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `writer`; every emitted event becomes one line.
    pub fn new(writer: W) -> Self {
        Self { writer }
    }

    /// Unwraps the inner writer (flushing it).
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, event: TraceEvent) {
        // Trace emission failing must not abort a simulation; drop the line.
        let _ = writeln!(self.writer, "{}", event.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use gala_gpu::memory::Space;

    fn sample_superstep() -> TraceEvent {
        let mut decide = MemTally::new();
        decide.load(Space::Global, 10);
        decide.atomic(Space::Shared, 3);
        let mut weight = MemTally::new();
        weight.store(Space::Global, 5);
        TraceEvent::Superstep {
            round: 0,
            superstep: 2,
            active: 100,
            moved: 40,
            pruned: 10,
            unmoved: 50,
            modularity: 0.41,
            delta_q: 0.02,
            decide_tally: decide,
            weight_tally: weight,
            hash_occupancy: 0.75,
            hash_evictions: 7,
        }
    }

    #[test]
    fn jsonl_lines_round_trip_through_own_parser() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(TraceEvent::RunStart {
            algorithm: "louvain".into(),
            n: 34,
            m: 78,
            devices: 1,
        });
        sink.emit(sample_superstep());
        sink.emit(TraceEvent::RunEnd {
            modularity: 0.42,
            rounds: 3,
            total_cycles: 123456.0,
        });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let events: Vec<_> = lines.iter().map(|l| parse(l).unwrap()).collect();
        assert_eq!(events[0].get("event").unwrap().as_str(), Some("run_start"));
        assert_eq!(
            events[0].get("schema").unwrap().as_u64(),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(events[1].get("event").unwrap().as_str(), Some("superstep"));
        assert_eq!(events[1].get("moved").unwrap().as_u64(), Some(40));
        assert_eq!(
            events[1]
                .get("decide_tally")
                .unwrap()
                .get("global_loads")
                .unwrap()
                .as_u64(),
            Some(10)
        );
        assert_eq!(
            events[1].get("hash_occupancy").unwrap().as_f64(),
            Some(0.75)
        );
        assert_eq!(events[2].get("event").unwrap().as_str(), Some("run_end"));
        assert_eq!(events[2].get("rounds").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn span_event_round_trips_through_jsonl() {
        use gala_gpu::profile::Profiler;
        let mut p = Profiler::new();
        p.scope("decide", |p| {
            let mut t = MemTally::new();
            t.load(Space::Global, 4);
            t.simt_step(0xFFFF);
            t.simt_serialize(2);
            t.global_request(&[0, 1, 900], 8);
            p.record(&t);
            p.count("items", 3);
            p.scope("hash", |p| p.count("hash_evictions", 5));
        });
        let event = TraceEvent::Span {
            round: 1,
            superstep: 7,
            phase: "phase1".into(),
            root: p.finish(),
        };
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(event.clone());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let v = parse(text.trim()).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("round").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("superstep").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("phase").unwrap().as_str(), Some("phase1"));
        let root = span_from_json(v.get("root").unwrap()).unwrap();
        let TraceEvent::Span { root: original, .. } = event else {
            unreachable!()
        };
        assert_eq!(root, original);
        let decide = root.child("decide").unwrap();
        assert_eq!(decide.tally.simt_steps, 1);
        assert_eq!(decide.tally.simt_serialized, 2);
        assert_eq!(decide.tally.coalesce_requests, 1);
        assert_eq!(decide.child("hash").unwrap().counter("hash_evictions"), 5);
    }

    #[test]
    fn tally_round_trips_with_new_counters() {
        let mut t = MemTally::new();
        t.load(Space::Global, 9);
        t.simt_step(0b101);
        t.global_request(&[3, 600], 4);
        let parsed = tally_from_json(&parse(&tally_to_json(&t).render()).unwrap()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn tally_from_json_rejects_missing_fields() {
        let v = Value::object().set("register_ops", 1u64);
        assert!(tally_from_json(&v).is_none());
    }

    #[test]
    fn metrics_event_round_trips_through_jsonl() {
        let mut r = MetricsRegistry::new();
        r.inc("pruning/pruned", 42);
        r.gauge("phase1/moved_fraction", 0.5);
        r.observe("kernel/shuffle_degree", 12);
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(TraceEvent::Metrics {
            round: 2,
            scope: "phase1".into(),
            registry: r.clone(),
        });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let v = parse(text.trim()).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("metrics"));
        assert_eq!(
            v.get("schema").unwrap().as_u64(),
            Some(SCHEMA_VERSION),
            "metrics events are schema 3+"
        );
        assert_eq!(v.get("round").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("scope").unwrap().as_str(), Some("phase1"));
        let back = MetricsRegistry::from_json(v.get("registry").unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        assert!(VecSink::default().enabled());
    }

    #[test]
    fn vec_sink_buffers_in_order() {
        let mut sink = VecSink::default();
        sink.emit(TraceEvent::RunEnd {
            modularity: 0.1,
            rounds: 1,
            total_cycles: 1.0,
        });
        sink.emit(sample_superstep());
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0].kind(), "run_end");
        assert_eq!(sink.events[1].kind(), "superstep");
    }

    #[test]
    fn span_serialisation_covers_tree() {
        use gala_gpu::profile::Profiler;
        let mut p = Profiler::new();
        p.scope("superstep", |p| {
            p.scope("decide", |p| {
                let mut t = MemTally::new();
                t.load(Space::Global, 4);
                p.record(&t);
                p.count("moved", 2);
            });
        });
        let v = span_to_json(&p.finish());
        let step = &v.get("children").unwrap().as_array().unwrap()[0];
        assert_eq!(step.get("name").unwrap().as_str(), Some("superstep"));
        let decide = &step.get("children").unwrap().as_array().unwrap()[0];
        assert_eq!(
            decide
                .get("counters")
                .unwrap()
                .get("moved")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert_eq!(
            decide
                .get("tally")
                .unwrap()
                .get("global_loads")
                .unwrap()
                .as_u64(),
            Some(4)
        );
    }

    fn sample_tree() -> SpanRecord {
        use gala_gpu::profile::Profiler;
        let mut p = Profiler::new();
        p.scope("superstep", |p| {
            p.scope("decide", |p| {
                p.scope("hash", |p| {
                    let mut t = MemTally::new();
                    t.load(Space::Global, 40);
                    t.atomic(Space::Shared, 6);
                    t.global_request(&[0, 1, 900], 8);
                    p.record(&t);
                    p.count("items", 12);
                });
            });
            p.scope("sync", |p| p.count("elapsed_ns", 450));
        });
        p.finish()
    }

    #[test]
    fn profile_rows_flatten_paths_and_sum_to_self_cycles() {
        let tree = sample_tree();
        let cost = CostModel::default();
        let rows = profile_spans(&tree, &cost);
        let paths: Vec<&str> = rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(
            paths,
            [
                "superstep",
                "superstep/decide",
                "superstep/decide/hash",
                "superstep/sync"
            ]
        );
        let hash = tree
            .child("superstep")
            .and_then(|s| s.child("decide"))
            .and_then(|d| d.child("hash"))
            .unwrap();
        let row = &rows[2];
        assert_eq!(row.total, hash.self_cycles(&cost));
        assert_eq!(row.components.total(), row.total);
        assert_eq!(row.invocations, 1);
    }

    #[test]
    fn wall_profile_rows_charge_single_buckets() {
        let rows = profile_spans_wall(&sample_tree());
        let sync = rows.iter().find(|r| r.path == "superstep/sync").unwrap();
        assert_eq!(sync.components.sync, 450.0);
        assert_eq!(sync.components.compute, 0.0);
        assert_eq!(sync.total, 450.0);
        let decide = rows.iter().find(|r| r.path == "superstep/decide").unwrap();
        assert_eq!(decide.total, 0.0, "no elapsed_ns counter, no charge");
    }

    #[test]
    fn profile_event_round_trips_through_jsonl() {
        let event = TraceEvent::Profile {
            round: 2,
            superstep: 5,
            phase: "phase1".into(),
            backend: "sim".into(),
            unit: "cycles".into(),
            spans: profile_spans(&sample_tree(), &CostModel::default()),
        };
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(event.clone());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let v = parse(text.trim()).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("profile"));
        assert_eq!(
            v.get("schema").unwrap().as_u64(),
            Some(SCHEMA_VERSION),
            "profile events are schema 4+"
        );
        assert_eq!(v.get("backend").unwrap().as_str(), Some("sim"));
        assert_eq!(v.get("unit").unwrap().as_str(), Some("cycles"));
        let spans: Vec<ProfileSpan> = v
            .get("spans")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| profile_span_from_json(s).unwrap())
            .collect();
        let TraceEvent::Profile {
            spans: original, ..
        } = event
        else {
            unreachable!()
        };
        assert_eq!(spans, original);
    }

    #[test]
    fn profile_span_from_json_rejects_missing_components() {
        let mut row = profile_span_to_json(&ProfileSpan {
            path: "decide".into(),
            invocations: 1,
            total: 0.0,
            components: ComponentCharges::default(),
        });
        assert!(profile_span_from_json(&row).is_some());
        row = row.set("components", Value::object().set("compute", 1.0));
        assert!(profile_span_from_json(&row).is_none());
    }

    mod profile_props {
        use super::*;
        use proptest::prelude::*;

        /// Counts below 2^40 keep every weighted term — and their sum — an
        /// exact integer under the default integer-weight cost model, so
        /// equality assertions below are bit-for-bit, mirroring the PR-5
        /// metrics proptests' 2^53-exactness argument.
        fn tally_strategy() -> impl Strategy<Value = MemTally> {
            proptest::collection::vec(0u64..(1 << 40), 11).prop_map(|v| {
                let mut t = MemTally::new();
                t.register_ops = v[0];
                t.shared_loads = v[1];
                t.shared_stores = v[2];
                t.global_loads = v[3];
                t.global_stores = v[4];
                t.shared_atomics = v[5];
                t.global_atomics = v[6];
                t.warp_primitives = v[7];
                t.coalesce_requests = v[8];
                // ideal <= transactions, as the simulator guarantees.
                t.coalesce_transactions = v[9].max(v[10]);
                t.coalesce_ideal = v[9].min(v[10]);
                t
            })
        }

        proptest! {
            #[test]
            fn components_always_partition_cycles(t in tally_strategy()) {
                let cost = CostModel::default();
                let c = cost.components(&t);
                prop_assert_eq!(c.total(), cost.cycles(&t));
                prop_assert!(c.get("global_coalesced").unwrap() >= 0.0);
                prop_assert!(c.get("global_uncoalesced").unwrap() >= 0.0);
            }

            #[test]
            fn component_addition_is_exact_and_associative(
                a in tally_strategy(),
                b in tally_strategy(),
                c in tally_strategy(),
            ) {
                let cost = CostModel::default();
                let (ca, cb, cc) =
                    (cost.components(&a), cost.components(&b), cost.components(&c));
                prop_assert_eq!((ca + cb) + cc, ca + (cb + cc));
                prop_assert_eq!((ca + cb).total(), ca.total() + cb.total());
            }

            #[test]
            fn merged_tallies_preserve_component_totals(
                a in tally_strategy(),
                b in tally_strategy(),
            ) {
                // Span merging adds tallies and re-derives components: the
                // re-derived breakdown must still partition the merged
                // span's cycles exactly.
                let cost = CostModel::default();
                let merged = a + b;
                prop_assert_eq!(cost.components(&merged).total(), cost.cycles(&merged));
            }

            #[test]
            fn profile_spans_round_trip_through_json(
                t in tally_strategy(),
                segs in proptest::collection::vec(0usize..4, 1..4),
                invocations in 0u64..1_000_000,
            ) {
                let names = ["decide", "hash", "contract", "sync"];
                let path = segs
                    .iter()
                    .map(|&i| names[i])
                    .collect::<Vec<_>>()
                    .join("/");
                let span = ProfileSpan {
                    path,
                    invocations,
                    total: CostModel::default().components(&t).total(),
                    components: CostModel::default().components(&t),
                };
                let rendered = profile_span_to_json(&span).render();
                let back = profile_span_from_json(&parse(&rendered).unwrap()).unwrap();
                prop_assert_eq!(back, span);
            }
        }
    }
}
