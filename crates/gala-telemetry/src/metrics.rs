//! Algorithm-level metrics: counters, gauges, and log2-bucketed histograms.
//!
//! The trace layer ([`crate::trace`]) captures *per-event* quantities; this
//! module captures *aggregates and distributions* the paper's figures are
//! built from — pruning effectiveness, shuffle-vs-hash routing splits with
//! degree distributions, hashtable level statistics, moved-vertex
//! fractions, dense/sparse sync decisions. Drivers fill a
//! [`MetricsRegistry`] while a run executes (gated on the trace sink being
//! enabled, so the plain hot path pays nothing) and emit it as a `metrics`
//! trace event.
//!
//! All three metric kinds merge associatively, so registries built
//! independently per worker, per device, or per round can be folded into
//! one — the same discipline the simulator's `MemTally` follows.

use crate::json::Value;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `0` counts the value `0`; bucket `i >= 1` counts values in
/// `[2^(i-1), 2^i - 1]` — i.e. a value's bucket is its bit length. The
/// bucket vector grows on demand and carries no trailing zero buckets, so
/// two histograms merge by element-wise addition regardless of the ranges
/// they saw.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts, indexed by bit length of the value.
    buckets: Vec<u64>,
    /// Total samples recorded.
    count: u64,
    /// Sum of all recorded values (saturating).
    sum: u64,
    /// Smallest value recorded (`0` when empty).
    min: u64,
    /// Largest value recorded (`0` when empty).
    max: u64,
}

/// The bucket index of a value: its bit length (`0` for `0`).
#[inline]
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let b = bucket_of(value);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The per-bucket counts, lowest bucket first (no trailing zeros).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The inclusive `[lo, hi]` value range bucket `i` covers. Bucket 64
    /// (values with the top bit set) is capped at `u64::MAX`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 0)
        } else {
            let hi = match 1u64.checked_shl(i as u32) {
                Some(top) => top - 1,
                None => u64::MAX,
            };
            (1u64 << (i - 1), hi)
        }
    }

    /// Folds `other` into `self` (element-wise; associative and
    /// commutative).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Serialises to the documented JSON object form.
    ///
    /// JSON numbers are `f64`, so `count`/`sum`/`min`/`max` round-trip
    /// exactly only up to 2^53 — far beyond any quantity the drivers
    /// record (vertex counts, bytes, probe lengths).
    pub fn to_json(&self) -> Value {
        Value::object()
            .set("count", self.count)
            .set("sum", self.sum)
            .set("min", self.min)
            .set("max", self.max)
            .set(
                "buckets",
                Value::Array(self.buckets.iter().map(|&b| Value::from(b)).collect()),
            )
    }

    /// Parses a histogram back from [`Histogram::to_json`] output. Returns
    /// `None` on any structural mismatch or when the bucket counts do not
    /// sum to `count`.
    pub fn from_json(v: &Value) -> Option<Histogram> {
        let buckets: Vec<u64> = v
            .get("buckets")?
            .as_array()?
            .iter()
            .map(Value::as_u64)
            .collect::<Option<_>>()?;
        let h = Histogram {
            count: v.get("count")?.as_u64()?,
            sum: v.get("sum")?.as_u64()?,
            min: v.get("min")?.as_u64()?,
            max: v.get("max")?.as_u64()?,
            buckets,
        };
        if h.buckets.iter().sum::<u64>() != h.count || (h.count > 0 && h.min > h.max) {
            return None;
        }
        Some(h)
    }
}

/// An insertion-ordered registry of named counters, gauges, and
/// [`Histogram`]s.
///
/// * **Counters** accumulate by addition (`inc`); merging adds.
/// * **Gauges** are point-in-time `f64` readings (`gauge`); merging keeps
///   the incoming value (last writer wins), which is the right call for
///   "final fraction" style readings recomputed by whoever merges last.
/// * **Histograms** record sample distributions (`observe`); merging folds
///   bucket-wise.
///
/// Names are free-form; the drivers use `area/metric` paths
/// (`pruning/pruned`, `kernel/shuffle_degree`, `sync/dense_bytes`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

fn find_mut<'a, T>(
    entries: &'a mut Vec<(String, T)>,
    name: &str,
    init: impl Fn() -> T,
) -> &'a mut T {
    let idx = match entries.iter().position(|(n, _)| n == name) {
        Some(i) => i,
        None => {
            entries.push((name.to_string(), init()));
            entries.len() - 1
        }
    };
    &mut entries[idx].1
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn inc(&mut self, name: &str, delta: u64) {
        *find_mut(&mut self.counters, name, || 0) += delta;
    }

    /// Sets the named gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        *find_mut(&mut self.gauges, name, || 0.0) = value;
    }

    /// Records one sample into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        find_mut(&mut self.histograms, name, Histogram::new).record(value);
    }

    /// Mutable access to a named histogram (for bulk recording).
    pub fn histogram_mut(&mut self, name: &str) -> &mut Histogram {
        find_mut(&mut self.histograms, name, Histogram::new)
    }

    /// Reads a counter (`None` when absent).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Reads a gauge (`None` when absent).
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Reads a histogram (`None` when absent).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// All counters in insertion order.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// All gauges in insertion order.
    pub fn gauges(&self) -> &[(String, f64)] {
        &self.gauges
    }

    /// All histograms in insertion order.
    pub fn histograms(&self) -> &[(String, Histogram)] {
        &self.histograms
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, gauges take `other`'s
    /// value, histograms merge bucket-wise. Associative over any merge
    /// order for counters and histograms.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            self.inc(name, *v);
        }
        for (name, v) in &other.gauges {
            self.gauge(name, *v);
        }
        for (name, h) in &other.histograms {
            find_mut(&mut self.histograms, name, Histogram::new).merge(h);
        }
    }

    /// Serialises to the documented JSON object form (three sub-objects,
    /// insertion-ordered).
    pub fn to_json(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .fold(Value::object(), |v, (k, n)| v.set(k, *n));
        let gauges = self
            .gauges
            .iter()
            .fold(Value::object(), |v, (k, g)| v.set(k, *g));
        let histograms = self
            .histograms
            .iter()
            .fold(Value::object(), |v, (k, h)| v.set(k, h.to_json()));
        Value::object()
            .set("counters", counters)
            .set("gauges", gauges)
            .set("histograms", histograms)
    }

    /// Parses a registry back from [`MetricsRegistry::to_json`] output.
    /// Returns `None` on any structural mismatch.
    pub fn from_json(v: &Value) -> Option<MetricsRegistry> {
        let counters = v
            .get("counters")?
            .as_object()?
            .iter()
            .map(|(k, n)| Some((k.clone(), n.as_u64()?)))
            .collect::<Option<_>>()?;
        let gauges = v
            .get("gauges")?
            .as_object()?
            .iter()
            .map(|(k, g)| Some((k.clone(), g.as_f64()?)))
            .collect::<Option<_>>()?;
        let histograms = v
            .get("histograms")?
            .as_object()?
            .iter()
            .map(|(k, h)| Some((k.clone(), Histogram::from_json(h)?)))
            .collect::<Option<_>>()?;
        Some(MetricsRegistry {
            counters,
            gauges,
            histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries_follow_bit_length() {
        // Value 0 → bucket 0; [2^(i-1), 2^i - 1] → bucket i.
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[3], 2); // 4..7
        assert_eq!(h.buckets()[4], 1); // 8
        assert_eq!(h.buckets()[10], 1); // 1023
        assert_eq!(h.buckets()[11], 1); // 1024
        assert_eq!(h.buckets()[64], 1); // u64::MAX
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn bucket_range_is_the_inverse_of_bucket_of() {
        for i in 0..=64usize {
            let (lo, hi) = Histogram::bucket_range(i);
            assert_eq!(bucket_of(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_of(hi), i, "hi of bucket {i}");
            if i > 0 {
                assert_eq!(lo, Histogram::bucket_range(i - 1).1 + 1, "contiguous");
            }
        }
    }

    #[test]
    fn empty_histogram_has_no_extrema() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(90);
        let snapshot = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, snapshot);
        let mut empty = Histogram::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn registry_counters_gauges_histograms_round_trip() {
        let mut r = MetricsRegistry::new();
        r.inc("pruning/pruned", 120);
        r.inc("pruning/pruned", 30);
        r.gauge("phase1/moved_fraction", 0.375);
        r.observe("kernel/shuffle_degree", 3);
        r.observe("kernel/shuffle_degree", 17);
        assert_eq!(r.counter("pruning/pruned"), Some(150));
        assert_eq!(r.gauge_value("phase1/moved_fraction"), Some(0.375));
        assert_eq!(r.histogram("kernel/shuffle_degree").unwrap().count(), 2);

        let text = r.to_json().render();
        let back = MetricsRegistry::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn registry_merge_adds_counters_and_folds_histograms() {
        let mut a = MetricsRegistry::new();
        a.inc("x", 1);
        a.gauge("g", 0.25);
        a.observe("h", 4);
        let mut b = MetricsRegistry::new();
        b.inc("x", 2);
        b.inc("y", 5);
        b.gauge("g", 0.75);
        b.observe("h", 1000);
        a.merge(&b);
        assert_eq!(a.counter("x"), Some(3));
        assert_eq!(a.counter("y"), Some(5));
        assert_eq!(a.gauge_value("g"), Some(0.75), "gauge: last writer wins");
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(1000));
    }

    #[test]
    fn from_json_rejects_incoherent_histograms() {
        // Bucket counts that do not sum to `count` must not parse.
        let bad = Value::object()
            .set("count", 5u64)
            .set("sum", 10u64)
            .set("min", 1u64)
            .set("max", 4u64)
            .set("buckets", Value::Array(vec![Value::from(1u64)]));
        assert!(Histogram::from_json(&bad).is_none());
        // Missing sub-object.
        let bad = Value::object().set("counters", Value::object());
        assert!(MetricsRegistry::from_json(&bad).is_none());
    }

    fn hist_of(values: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    proptest! {
        #[test]
        fn histogram_merge_is_associative(
            a in proptest::collection::vec(0u64..1_000_000, 0..40),
            b in proptest::collection::vec(0u64..1_000_000, 0..40),
            c in proptest::collection::vec(0u64..1_000_000, 0..40),
        ) {
            // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
            let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
            let mut left = ha.clone();
            left.merge(&hb);
            left.merge(&hc);
            let mut bc = hb.clone();
            bc.merge(&hc);
            let mut right = ha.clone();
            right.merge(&bc);
            prop_assert_eq!(&left, &right);
            // And merging equals recording the concatenation directly.
            let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
            prop_assert_eq!(&left, &hist_of(&all));
        }

        #[test]
        fn histogram_json_round_trip(
            // JSON numbers are f64: exact only below 2^53 (see to_json),
            // and that bound applies to `sum`, so 60 × 2^46 keeps it exact.
            values in proptest::collection::vec(0u64..(1 << 46), 0..60),
        ) {
            let h = hist_of(&values);
            let text = h.to_json().render();
            let back = Histogram::from_json(&parse(&text).unwrap()).unwrap();
            prop_assert_eq!(back, h);
        }

        #[test]
        fn every_sample_lands_in_its_bucket(value in 0u64..u64::MAX) {
            let mut h = Histogram::new();
            h.record(value);
            let b = h.buckets().iter().position(|&c| c == 1).unwrap();
            let (lo, hi) = Histogram::bucket_range(b);
            prop_assert!(lo <= value && value <= hi,
                "{value} outside bucket {b} = [{lo}, {hi}]");
        }
    }
}
