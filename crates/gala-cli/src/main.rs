use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    gala_cli::run(&argv)
}
