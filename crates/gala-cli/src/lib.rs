//! # gala-cli — command-line community detection
//!
//! ```text
//! gala detect <graph> [--algorithm gala|leiden|lpa|sequential]
//!                     [--pruning mg|sm|rm|pm|mgrm|none]
//!                     [--resolution <gamma>] [--format edgelist|metis|bin]
//!                     [--output <file>] [--devices <p>] [--quiet]
//! gala stats  <graph> [--format ...]
//! gala generate <sbm|lfr|rmat|ba|ws|gnp> --out <file> [generator options]
//! gala convert <in> <out>   (formats inferred from extension)
//! gala analyze <trace> [baseline] [--top <n>] [--threshold <f>] [--check]
//!                      [--chrome-trace <file>]
//! gala profile <sim.trace> <native.trace> [--top <n>] [--report <file>]
//!                      [--chrome-trace <file>] [--write-calibration <file>]
//!                      [--gate <file>] [--threshold <f>]
//! gala trend <report...> [--history <file>] [--threshold <f>] [--dry-run]
//! ```
//!
//! The parsing layer is separated from IO so it is unit-testable; see
//! [`args`] for the grammar and [`run`] for the dispatch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod args;
pub mod commands;
pub mod profile;
pub mod trend;

use std::process::ExitCode;

/// Entry point used by the `gala` binary: parse and dispatch.
pub fn run(argv: &[String]) -> ExitCode {
    match args::Command::parse(argv) {
        Ok(cmd) => match commands::execute(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
