//! `gala trend`: perf-trajectory tracking across bench-report generations.
//!
//! Ingests one or more bench/run report JSON files (the `--report` output
//! of the bench binaries and `gala detect`), appends one normalized row per
//! `(source, label, metric)` to a JSONL history file, and renders each
//! series as a sparkline trajectory. A series whose latest value moved
//! against its preferred direction by more than `--threshold` relative to
//! the previous generation is flagged as `REGRESSED` and makes the command
//! exit non-zero — the CI hook for catching gradual performance drift that
//! any single-run gate would miss.
//!
//! History rows are deliberately timestamp-free (`{"schema", "source",
//! "label", "metric", "value"}`): generation order is the file's line
//! order, so re-running the same reports produces byte-identical appends
//! and the committed history stays reproducible.

use crate::analyze::{rel_change, sparkline};
use crate::args::TrendArgs;
use crate::commands::Error;
use gala_telemetry::{json, Report, SCHEMA_VERSION};

/// How to judge movement of a metric, inferred from its name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    /// Timings, traffic, misses: growth is a regression.
    LowerIsBetter,
    /// Quality and efficiency scores: shrinkage is a regression.
    HigherIsBetter,
    /// Workload descriptors (sizes, counts of input objects): informational
    /// only, never flagged.
    Neutral,
}

/// Classifies a metric name. The report schema carries no direction flag,
/// so this encodes the workspace's naming conventions; unknown names fall
/// back to lower-is-better, the safe default for a perf tracker.
fn direction(metric: &str) -> Direction {
    let m = metric.to_ascii_lowercase();
    let has = |needle: &str| m.contains(needle);
    // Throughputs ("arcs/s", "Marcs/s") end with a per-second unit; they
    // must win over the Neutral size words they usually contain.
    if m.ends_with("/s") {
        Direction::HigherIsBetter
    } else if has("vertices") || has("arcs") || has("comms") || has("edges") || m == "n" || m == "m"
    {
        Direction::Neutral
    } else if has("speedup")
        || has("modularity")
        || has("nmi")
        || has("ari")
        || has("eff")
        || has("occupancy")
        || m == "q"
        || has("vs seq")
        || has("vs seed")
    {
        Direction::HigherIsBetter
    } else {
        Direction::LowerIsBetter
    }
}

/// One decoded history row.
#[derive(Clone, Debug)]
struct TrendRow {
    source: String,
    label: String,
    metric: String,
    value: f64,
}

impl TrendRow {
    fn key(&self) -> String {
        format!("{}/{}/{}", self.source, self.label, self.metric)
    }

    fn to_json_line(&self) -> String {
        json::Value::object()
            .set("schema", SCHEMA_VERSION)
            .set("source", self.source.as_str())
            .set("label", self.label.as_str())
            .set("metric", self.metric.as_str())
            .set("value", self.value)
            .render()
    }

    fn from_json_line(raw: &str, path: &str, line: usize) -> Result<TrendRow, Error> {
        let v = json::parse(raw).map_err(|e| format!("{path} line {line}: {e}"))?;
        let text = |key: &str| {
            v.get(key)
                .and_then(json::Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{path} line {line}: missing `{key}`"))
        };
        let value = v
            .get("value")
            .and_then(json::Value::as_f64)
            .ok_or_else(|| format!("{path} line {line}: missing `value`"))?;
        Ok(TrendRow {
            source: text("source")?,
            label: text("label")?,
            metric: text("metric")?,
            value,
        })
    }
}

/// Reads an existing history file; a missing file is an empty history.
fn load_history(path: &str) -> Result<Vec<TrendRow>, Error> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{path}: {e}").into()),
    };
    let mut rows = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        rows.push(TrendRow::from_json_line(raw, path, idx + 1)?);
    }
    Ok(rows)
}

/// Flattens one report into history rows, in the report's own row order.
fn rows_from_report(path: &str) -> Result<Vec<TrendRow>, Error> {
    let report = Report::read_from(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    for row in &report.rows {
        for (metric, value) in &row.metrics {
            out.push(TrendRow {
                source: report.name.clone(),
                label: row.label.clone(),
                metric: metric.clone(),
                value: *value,
            });
        }
    }
    Ok(out)
}

/// One rendered series: every generation of a `(source, label, metric)`
/// key, in history order.
struct Series {
    key: String,
    metric: String,
    values: Vec<f64>,
}

/// Groups rows into series, preserving first-seen key order.
fn collect_series(rows: &[TrendRow]) -> Vec<Series> {
    let mut out: Vec<Series> = Vec::new();
    for row in rows {
        let key = row.key();
        match out.iter_mut().find(|s| s.key == key) {
            Some(s) => s.values.push(row.value),
            None => out.push(Series {
                key,
                metric: row.metric.clone(),
                values: vec![row.value],
            }),
        }
    }
    out
}

/// Renders the trajectory table; the second element lists the keys of
/// series that regressed beyond `threshold` between the last two
/// generations.
fn render(series: &[Series], threshold: f64) -> (String, Vec<String>) {
    let width = series.iter().map(|s| s.key.len()).max().unwrap_or(6).max(6);
    let mut out = format!(
        "  {:<width$} {:>4} {:>12} {:>12} {:>9}  {:<12} trend\n",
        "series", "gens", "previous", "latest", "change", "verdict"
    );
    let mut regressions = Vec::new();
    for s in series {
        let latest = *s.values.last().unwrap();
        let (prev_text, change_text, verdict) = if s.values.len() < 2 {
            ("-".to_string(), "-".to_string(), "new")
        } else {
            let prev = s.values[s.values.len() - 2];
            let raw = rel_change(latest, prev);
            let change = if raw.is_finite() { raw } else { 0.0 };
            let bad = match direction(&s.metric) {
                Direction::LowerIsBetter => change,
                Direction::HigherIsBetter => -change,
                Direction::Neutral => 0.0,
            };
            let verdict = if bad > threshold {
                regressions.push(s.key.clone());
                "REGRESSED"
            } else if bad < -threshold {
                "improved"
            } else {
                "ok"
            };
            (
                crate::analyze::fmt_value(prev),
                format!("{:+.1}%", change * 100.0),
                verdict,
            )
        };
        out.push_str(&format!(
            "  {:<width$} {:>4} {:>12} {:>12} {:>9}  {:<12} {}\n",
            s.key,
            s.values.len(),
            prev_text,
            crate::analyze::fmt_value(latest),
            change_text,
            verdict,
            sparkline(&s.values),
        ));
    }
    (out, regressions)
}

/// Executes the `trend` subcommand: ingest, append, render, gate.
pub fn run(args: &TrendArgs) -> Result<(), Error> {
    let history = load_history(&args.history)?;
    let mut fresh = Vec::new();
    for path in &args.reports {
        fresh.extend(rows_from_report(path)?);
    }
    if !args.dry_run && !fresh.is_empty() {
        let mut text = String::new();
        for row in &fresh {
            text.push_str(&row.to_json_line());
            text.push('\n');
        }
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&args.history)
            .map_err(|e| format!("{}: {e}", args.history))?;
        file.write_all(text.as_bytes())
            .map_err(|e| format!("{}: {e}", args.history))?;
    }
    let mut all = history;
    all.extend(fresh);
    let series = collect_series(&all);
    println!(
        "trend: {} series over {} history rows ({})",
        series.len(),
        all.len(),
        args.history
    );
    let (table, regressions) = render(&series, args.threshold);
    print!("{table}");
    if !regressions.is_empty() {
        return Err(format!(
            "{} series regressed beyond {:.1}%: {}",
            regressions.len(),
            args.threshold * 100.0,
            regressions.join(", ")
        )
        .into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gala_telemetry::MetricRow;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("gala_trend_{name}_{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn write_report(path: &str, name: &str, pooled_ns: f64, speedup: f64) {
        let mut r = Report::new("bench", name);
        r.push(
            MetricRow::new("contract/FR/t1")
                .metric("Vertices", 6000.0)
                .metric("Pooled ns", pooled_ns)
                .metric("Speedup", speedup),
        );
        r.write_to(path).unwrap();
    }

    #[test]
    fn direction_heuristic_matches_workspace_names() {
        assert_eq!(direction("Pooled ns"), Direction::LowerIsBetter);
        assert_eq!(direction("ns/arc"), Direction::LowerIsBetter);
        assert_eq!(direction("total cycles"), Direction::LowerIsBetter);
        assert_eq!(direction("Speedup"), Direction::HigherIsBetter);
        assert_eq!(direction("modularity"), Direction::HigherIsBetter);
        assert_eq!(direction("NMI"), Direction::HigherIsBetter);
        assert_eq!(direction("Vertices"), Direction::Neutral);
        assert_eq!(direction("Arcs"), Direction::Neutral);
        // Throughputs end in "/s" and beat the Neutral size words.
        assert_eq!(direction("Arcs/s"), Direction::HigherIsBetter);
        assert_eq!(direction("Stream Marcs/s"), Direction::HigherIsBetter);
        // But "ns/superstep" style rates still read lower-is-better.
        assert_eq!(direction("ns/superstep"), Direction::LowerIsBetter);
    }

    #[test]
    fn rows_round_trip_through_jsonl() {
        let row = TrendRow {
            source: "bench_host".into(),
            label: "launch/FR/t1".into(),
            metric: "Pooled ns".into(),
            value: 190497.0,
        };
        let line = row.to_json_line();
        let back = TrendRow::from_json_line(&line, "mem", 1).unwrap();
        assert_eq!(back.key(), row.key());
        assert_eq!(back.value, row.value);
        assert!(TrendRow::from_json_line("{\"source\":\"x\"}", "mem", 1).is_err());
    }

    #[test]
    fn first_generation_is_new_not_regressed() {
        let history = tmp("first.jsonl");
        let report = format!("{}.json", tmp("first_report"));
        let _ = std::fs::remove_file(&history);
        write_report(&report, "bench_contract", 500_000.0, 4.5);
        let args = TrendArgs {
            reports: vec![report.clone()],
            history: history.clone(),
            threshold: 0.1,
            dry_run: false,
        };
        run(&args).unwrap();
        // The append is real and one row per metric was written.
        let rows = load_history(&history).unwrap();
        assert_eq!(rows.len(), 3);
        let _ = std::fs::remove_file(history);
        let _ = std::fs::remove_file(report);
    }

    #[test]
    fn injected_regression_makes_the_gate_fail() {
        let history = tmp("gate.jsonl");
        let report = format!("{}.json", tmp("gate_report"));
        let _ = std::fs::remove_file(&history);
        // Generation 1: healthy numbers.
        write_report(&report, "bench_contract", 500_000.0, 4.5);
        let args = TrendArgs {
            reports: vec![report.clone()],
            history: history.clone(),
            threshold: 0.1,
            dry_run: false,
        };
        run(&args).unwrap();
        // Generation 2: Pooled ns +50% (a lower-is-better metric) and
        // Speedup -33% must both trip the 10% gate and exit non-zero.
        write_report(&report, "bench_contract", 750_000.0, 3.0);
        let err = run(&args).unwrap_err().to_string();
        assert!(err.contains("regressed"), "{err}");
        assert!(err.contains("Pooled ns"), "{err}");
        assert!(err.contains("Speedup"), "{err}");
        // Vertices is neutral: constant or not, it never regresses.
        assert!(!err.contains("Vertices"), "{err}");
        // A loose threshold lets the same delta pass.
        let loose = TrendArgs {
            threshold: 5.0,
            dry_run: true,
            ..args.clone()
        };
        run(&loose).unwrap();
        let _ = std::fs::remove_file(history);
        let _ = std::fs::remove_file(report);
    }

    #[test]
    fn dry_run_does_not_touch_the_history() {
        let history = tmp("dry.jsonl");
        let report = format!("{}.json", tmp("dry_report"));
        let _ = std::fs::remove_file(&history);
        write_report(&report, "bench_host", 100.0, 1.0);
        let args = TrendArgs {
            reports: vec![report.clone()],
            history: history.clone(),
            threshold: 0.1,
            dry_run: true,
        };
        run(&args).unwrap();
        assert!(!std::path::Path::new(&history).exists());
        let _ = std::fs::remove_file(report);
    }

    #[test]
    fn committed_reports_ingest_cleanly() {
        // The repo's own BENCH_* reports must flatten into rows: this is
        // what CI feeds `gala trend`.
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        for name in [
            "BENCH_host.json",
            "BENCH_contract.json",
            "BENCH_native.json",
            "BENCH_profile.json",
            "BENCH_mg_contract.json",
        ] {
            let path = format!("{dir}/results/{name}");
            let rows = rows_from_report(&path).unwrap();
            assert!(!rows.is_empty(), "{name} produced no rows");
            assert!(rows.iter().all(|r| r.value.is_finite()));
        }
    }
}
