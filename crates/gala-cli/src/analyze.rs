//! `gala analyze`: offline inspection of `--trace` JSONL files.
//!
//! Loads one trace and renders per-superstep curves (modularity, moved and
//! pruned rates, hashtable occupancy and evictions, warp divergence,
//! coalescing efficiency, sync traffic) as aligned sparkline rows, plus a
//! flamegraph-style top-N summary of the merged profiling span tree. With a
//! second (baseline) trace it diffs a watched-metric set and reports
//! regressions beyond `--threshold`; `--check` validates the trace's
//! structural invariants instead (the CI smoke job runs this on a freshly
//! produced trace); `--chrome-trace FILE` exports the span trees and
//! superstep counters as a Chrome Trace Event Format JSON file loadable in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Every renderer returns a `String` so golden tests can pin output
//! byte-for-byte; [`run`] only adds the printing.

use crate::args::AnalyzeArgs;
use crate::commands::Error;
use gala_gpu::memory::{CostModel, MemTally};
use gala_gpu::profile::{Profiler, SpanRecord};
use gala_telemetry::recorder::{self, LogEvent, ProgressSnapshot};
use gala_telemetry::{
    json, profile_span_from_json, span_from_json, tally_from_json, MetricsRegistry, ProfileSpan,
    MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};

/// One `superstep` event, decoded.
#[derive(Clone, Debug)]
struct Superstep {
    round: u64,
    superstep: u64,
    active: u64,
    moved: u64,
    pruned: u64,
    unmoved: u64,
    modularity: f64,
    hash_occupancy: f64,
    hash_evictions: u64,
    decide_tally: MemTally,
    weight_tally: MemTally,
}

/// One `sync` event, decoded (multi-device traces only).
#[derive(Clone, Debug)]
struct SyncEvent {
    superstep: u64,
    mode: String,
    bytes: u64,
    comm_us: f64,
}

/// One `metrics` event, decoded (schema 3+ traces only).
#[derive(Clone, Debug)]
struct MetricsEvent {
    round: u64,
    scope: String,
    registry: MetricsRegistry,
}

/// Exchange accounting lifted from a partitioned `contract` span (the
/// `contract` → `exchange` scope emitted by the multi-device phase-2
/// path). `--check` cross-validates these counters against each other and
/// against the matching exchange `sync` event.
#[derive(Clone, Copy, Debug)]
struct ExchangeCheck {
    bytes: u64,
    ghost_members: u64,
    ghost_arcs: u64,
    sparse_bytes: u64,
    dense_bytes: u64,
    dense_exchanges: u64,
    sparse_exchanges: u64,
}

/// Bytes per ghost community member in the sparse exchange model
/// (mirrors `gala-core::mg_contract::EXCHANGE_BYTES_PER_MEMBER`).
const EXCHANGE_BYTES_PER_MEMBER: u64 = 8;
/// Bytes per ghost member arc in the sparse exchange model
/// (mirrors `gala-core::mg_contract::EXCHANGE_BYTES_PER_ARC`).
const EXCHANGE_BYTES_PER_ARC: u64 = 12;

/// What `--check` needs from one `span` event. The tree itself is merged
/// into [`Trace::merged_root`] at parse time and dropped, so a trace with
/// thousands of supersteps never holds every tree at once.
#[derive(Clone, Debug)]
struct SpanCheck {
    phase: String,
    tally: MemTally,
    /// Present only on partitioned phase-2 contract spans.
    exchange: Option<ExchangeCheck>,
}

/// One retained span tree (only kept when the chrome-trace exporter needs
/// per-superstep timelines rather than the merged profile).
#[derive(Clone, Debug)]
struct SpanTree {
    round: u64,
    superstep: u64,
    phase: String,
    root: SpanRecord,
}

/// One `profile` event, decoded (schema 4+ traces only).
#[derive(Clone, Debug)]
struct ProfileCheck {
    phase: String,
    backend: String,
    unit: String,
    spans: Vec<ProfileSpan>,
}

/// The `run_end` summary.
#[derive(Clone, Copy, Debug)]
struct RunEnd {
    modularity: f64,
    rounds: u64,
    total_cycles: f64,
}

/// A fully decoded trace file.
#[derive(Clone, Debug, Default)]
struct Trace {
    algorithm: String,
    n: u64,
    m: u64,
    devices: u64,
    supersteps: Vec<Superstep>,
    syncs: Vec<SyncEvent>,
    span_checks: Vec<SpanCheck>,
    metrics: Vec<MetricsEvent>,
    profiles: Vec<ProfileCheck>,
    /// Individual span trees, retained only when loaded with
    /// `keep_spans` (the chrome-trace exporter); empty otherwise.
    span_trees: Vec<SpanTree>,
    /// All span trees merged by name in first-seen order (the in-process
    /// profiler's rule), built incrementally while streaming the file.
    merged_root: SpanRecord,
    /// Flight-recorder ring lines drained into the trace (schema 5+).
    logs: Vec<LogEvent>,
    /// Deterministic per-round driver snapshots (schema 5+).
    progress: Vec<ProgressSnapshot>,
    round_ends: u64,
    run_end: Option<RunEnd>,
    events: usize,
}

fn field_u64(v: &json::Value, key: &str, line: usize) -> Result<u64, Error> {
    v.get(key)
        .and_then(|x| x.as_u64())
        .ok_or_else(|| format!("line {line}: missing or non-integer `{key}`").into())
}

fn field_f64(v: &json::Value, key: &str, line: usize) -> Result<f64, Error> {
    v.get(key)
        .and_then(|x| x.as_f64())
        .ok_or_else(|| format!("line {line}: missing or non-numeric `{key}`").into())
}

fn field_str(v: &json::Value, key: &str, line: usize) -> Result<String, Error> {
    Ok(v.get(key)
        .and_then(|x| x.as_str())
        .ok_or_else(|| format!("line {line}: missing or non-string `{key}`"))?
        .to_string())
}

fn field_tally(v: &json::Value, key: &str, line: usize) -> Result<MemTally, Error> {
    v.get(key)
        .and_then(tally_from_json)
        .ok_or_else(|| format!("line {line}: bad `{key}` tally").into())
}

/// Parses a trace JSONL file, rejecting unknown schemas, unknown event
/// kinds and malformed lines (line numbers in every error).
///
/// The file is streamed line by line — span trees are folded into the
/// merged profile as they arrive — so peak memory is one line plus the
/// decoded summaries, independent of trace length.
fn load_trace(path: &str) -> Result<Trace, Error> {
    load_trace_with_spans(path, false)
}

/// [`load_trace`] plus optional retention of every individual span tree
/// (`keep_spans`), which the chrome-trace exporter needs to lay out a
/// per-superstep timeline. The default path drops them to keep memory flat.
fn load_trace_with_spans(path: &str, keep_spans: bool) -> Result<Trace, Error> {
    use std::io::BufRead;
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let reader = std::io::BufReader::new(file);
    let mut trace = Trace::default();
    let mut merger = Profiler::new();
    for (idx, raw) in reader.lines().enumerate() {
        let line = idx + 1;
        let raw = raw.map_err(|e| format!("{path} line {line}: {e}"))?;
        if raw.trim().is_empty() {
            continue;
        }
        let v = json::parse(&raw).map_err(|e| format!("{path} line {line}: {e}"))?;
        let schema = field_u64(&v, "schema", line)?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema) {
            return Err(format!(
                "{path} line {line}: event {} has schema {schema} (this build reads \
                 {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})",
                trace.events
            )
            .into());
        }
        trace.events += 1;
        match field_str(&v, "event", line)?.as_str() {
            "run_start" => {
                trace.algorithm = field_str(&v, "algorithm", line)?;
                trace.n = field_u64(&v, "n", line)?;
                trace.m = field_u64(&v, "m", line)?;
                trace.devices = field_u64(&v, "devices", line)?;
            }
            "superstep" => trace.supersteps.push(Superstep {
                round: field_u64(&v, "round", line)?,
                superstep: field_u64(&v, "superstep", line)?,
                active: field_u64(&v, "active", line)?,
                moved: field_u64(&v, "moved", line)?,
                pruned: field_u64(&v, "pruned", line)?,
                unmoved: field_u64(&v, "unmoved", line)?,
                modularity: field_f64(&v, "modularity", line)?,
                hash_occupancy: field_f64(&v, "hash_occupancy", line)?,
                hash_evictions: field_u64(&v, "hash_evictions", line)?,
                decide_tally: field_tally(&v, "decide_tally", line)?,
                weight_tally: field_tally(&v, "weight_tally", line)?,
            }),
            "sync" => trace.syncs.push(SyncEvent {
                superstep: field_u64(&v, "superstep", line)?,
                mode: field_str(&v, "mode", line)?,
                bytes: field_u64(&v, "bytes", line)?,
                comm_us: field_f64(&v, "comm_us", line)?,
            }),
            "span" => {
                let root = v
                    .get("root")
                    .and_then(span_from_json)
                    .ok_or_else(|| format!("{path} line {line}: bad span tree"))?;
                let exchange = root
                    .child("contract")
                    .and_then(|c| c.child("exchange"))
                    .map(|ex| ExchangeCheck {
                        bytes: ex.counter("bytes"),
                        ghost_members: ex.counter("ghost_members"),
                        ghost_arcs: ex.counter("ghost_arcs"),
                        sparse_bytes: ex.counter("sparse_bytes"),
                        dense_bytes: ex.counter("dense_bytes"),
                        dense_exchanges: ex.counter("dense_exchanges"),
                        sparse_exchanges: ex.counter("sparse_exchanges"),
                    });
                trace.span_checks.push(SpanCheck {
                    phase: field_str(&v, "phase", line)?,
                    tally: root.total_tally(),
                    exchange,
                });
                if keep_spans {
                    trace.span_trees.push(SpanTree {
                        round: field_u64(&v, "round", line)?,
                        superstep: field_u64(&v, "superstep", line)?,
                        phase: field_str(&v, "phase", line)?,
                        root: root.clone(),
                    });
                }
                merger.absorb(root);
            }
            "profile" => {
                let spans = v
                    .get("spans")
                    .and_then(json::Value::as_array)
                    .ok_or_else(|| format!("{path} line {line}: profile event missing `spans`"))?
                    .iter()
                    .map(profile_span_from_json)
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| format!("{path} line {line}: bad profile span"))?;
                trace.profiles.push(ProfileCheck {
                    phase: field_str(&v, "phase", line)?,
                    backend: field_str(&v, "backend", line)?,
                    unit: field_str(&v, "unit", line)?,
                    spans,
                });
            }
            "metrics" => {
                let registry = v
                    .get("registry")
                    .and_then(MetricsRegistry::from_json)
                    .ok_or_else(|| format!("{path} line {line}: bad metrics registry"))?;
                trace.metrics.push(MetricsEvent {
                    round: field_u64(&v, "round", line)?,
                    scope: field_str(&v, "scope", line)?,
                    registry,
                });
            }
            "log" => trace.logs.push(
                LogEvent::from_json(&v)
                    .ok_or_else(|| format!("{path} line {line}: bad log event"))?,
            ),
            "progress" => trace.progress.push(
                ProgressSnapshot::from_json(&v)
                    .ok_or_else(|| format!("{path} line {line}: bad progress event"))?,
            ),
            "round_end" => trace.round_ends += 1,
            "run_end" => {
                trace.run_end = Some(RunEnd {
                    modularity: field_f64(&v, "modularity", line)?,
                    rounds: field_u64(&v, "rounds", line)?,
                    total_cycles: field_f64(&v, "total_cycles", line)?,
                });
            }
            other => {
                return Err(format!("{path} line {line}: unknown event `{other}`").into());
            }
        }
    }
    if trace.events == 0 {
        return Err(format!("{path}: empty trace").into());
    }
    trace.merged_root = merger.finish();
    Ok(trace)
}

/// Structural validation (`--check`): bracketing, per-superstep counting
/// invariants, finite metrics, coherent tally counters.
fn check(path: &str, trace: &Trace) -> Result<String, Error> {
    if trace.algorithm.is_empty() {
        return Err(format!("{path}: no run_start event").into());
    }
    let end = trace
        .run_end
        .ok_or_else(|| format!("{path}: no run_end event (truncated trace?)"))?;
    if !end.modularity.is_finite() {
        return Err(format!("{path}: non-finite final modularity").into());
    }
    for s in &trace.supersteps {
        let at = format!("{path}: round {} superstep {}", s.round, s.superstep);
        if s.active != s.moved + s.unmoved {
            return Err(format!(
                "{at}: active ({}) != moved ({}) + unmoved ({})",
                s.active, s.moved, s.unmoved
            )
            .into());
        }
        if s.active + s.pruned > trace.n && trace.devices <= 1 && s.round == 0 {
            return Err(format!(
                "{at}: active + pruned ({}) exceeds n ({})",
                s.active + s.pruned,
                trace.n
            )
            .into());
        }
        if !s.modularity.is_finite() || !(0.0..=1.0).contains(&s.hash_occupancy) {
            return Err(format!("{at}: non-finite modularity or occupancy out of [0,1]").into());
        }
        for (name, t) in [("decide", &s.decide_tally), ("weight", &s.weight_tally)] {
            if t.simt_active_lanes > t.simt_steps * 32 {
                return Err(format!("{at}: {name} tally has >32 active lanes per step").into());
            }
            if t.coalesce_ideal > t.coalesce_transactions {
                return Err(format!("{at}: {name} tally coalesce ideal > transactions").into());
            }
        }
    }
    for y in &trace.syncs {
        // Phase-1 syncs carry `dense`/`sparse`; partitioned phase-2
        // contractions emit one `exchange-*` sync per round.
        if !["dense", "sparse", "exchange-dense", "exchange-sparse"].contains(&y.mode.as_str()) {
            return Err(format!(
                "{path}: sync at superstep {} has unknown mode `{}`",
                y.superstep, y.mode
            )
            .into());
        }
    }
    for (i, ev) in trace.span_checks.iter().enumerate() {
        if ev.phase != "phase1" && ev.phase != "contract" {
            return Err(format!("{path}: span tree {i} has unknown phase `{}`", ev.phase).into());
        }
        let t = ev.tally;
        if t.simt_active_lanes > t.simt_steps * 32 || t.coalesce_ideal > t.coalesce_transactions {
            return Err(format!("{path}: span tree {i} has incoherent SIMT counters").into());
        }
    }
    // Partitioned phase-2 accounting: each contract span's exchange scope
    // must be internally consistent (sparse bytes derived from the ghost
    // row counts, exactly one strategy selected, payload matching the
    // chosen strategy), and the i-th exchange `sync` event must agree with
    // the i-th exchange span on mode and byte count — both streams are
    // emitted once per partitioned round, in round order.
    let exchange_spans: Vec<ExchangeCheck> = trace
        .span_checks
        .iter()
        .filter_map(|s| s.exchange)
        .collect();
    for (i, ex) in exchange_spans.iter().enumerate() {
        let at = format!("{path}: exchange span {i}");
        let expected_sparse =
            ex.ghost_members * EXCHANGE_BYTES_PER_MEMBER + ex.ghost_arcs * EXCHANGE_BYTES_PER_ARC;
        if ex.sparse_bytes != expected_sparse {
            return Err(format!(
                "{at}: sparse bytes {} inconsistent with {} ghost members + {} ghost arcs \
                 (expected {expected_sparse})",
                ex.sparse_bytes, ex.ghost_members, ex.ghost_arcs
            )
            .into());
        }
        if ex.dense_exchanges + ex.sparse_exchanges != 1 {
            return Err(format!(
                "{at}: selected {} dense + {} sparse strategies (expected exactly one)",
                ex.dense_exchanges, ex.sparse_exchanges
            )
            .into());
        }
        let chosen = if ex.dense_exchanges == 1 {
            ex.dense_bytes
        } else {
            ex.sparse_bytes
        };
        if ex.bytes != chosen {
            return Err(format!(
                "{at}: payload {} bytes does not match the selected strategy's {chosen}",
                ex.bytes
            )
            .into());
        }
    }
    let exchange_syncs: Vec<&SyncEvent> = trace
        .syncs
        .iter()
        .filter(|y| y.mode.starts_with("exchange-"))
        .collect();
    if exchange_syncs.len() != exchange_spans.len() {
        return Err(format!(
            "{path}: {} exchange sync events but {} exchange spans",
            exchange_syncs.len(),
            exchange_spans.len()
        )
        .into());
    }
    for (i, (y, ex)) in exchange_syncs.iter().zip(&exchange_spans).enumerate() {
        let at = format!("{path}: exchange sync {i} (superstep {})", y.superstep);
        let span_mode = if ex.dense_exchanges == 1 {
            "exchange-dense"
        } else {
            "exchange-sparse"
        };
        if y.mode != span_mode {
            return Err(format!(
                "{at}: mode `{}` disagrees with its contract span's `{span_mode}`",
                y.mode
            )
            .into());
        }
        if y.bytes != ex.bytes {
            return Err(format!(
                "{at}: {} bytes disagrees with its contract span's {}",
                y.bytes, ex.bytes
            )
            .into());
        }
    }
    for (i, ev) in trace.profiles.iter().enumerate() {
        let at = format!("{path}: profile event {i}");
        if ev.unit != "cycles" && ev.unit != "ns" {
            return Err(format!("{at} has unknown unit `{}`", ev.unit).into());
        }
        if ev.phase != "phase1" && ev.phase != "contract" {
            return Err(format!("{at} has unknown phase `{}`", ev.phase).into());
        }
        for span in &ev.spans {
            if !span.total.is_finite() || span.total < 0.0 {
                return Err(format!("{at}: span `{}` has a bad total", span.path).into());
            }
            // Sim charges are derived from integer-weighted tallies, so the
            // partition is exact — any gap means a corrupted event.
            if ev.unit == "cycles" && span.components.total() != span.total {
                return Err(format!(
                    "{at}: span `{}` components sum to {} but total is {}",
                    span.path,
                    span.components.total(),
                    span.total
                )
                .into());
            }
        }
    }
    // Flight-recorder lines: the ring drains one contiguous window, so the
    // sequence numbers must run without gaps — a jump means lines were lost
    // between the drain and the trace write, not by the (accounted) ring
    // eviction. Progress snapshots must carry sane scalars.
    for (i, pair) in trace.logs.windows(2).enumerate() {
        if pair[1].seq != pair[0].seq + 1 {
            return Err(format!(
                "{path}: log event {} has seq {} after seq {} (the drained window \
                 must be contiguous)",
                i + 1,
                pair[1].seq,
                pair[0].seq
            )
            .into());
        }
    }
    for (i, p) in trace.progress.iter().enumerate() {
        let at = format!("{path}: progress event {i} ({} r{})", p.driver, p.round);
        if !p.modularity.is_finite() {
            return Err(format!("{at}: non-finite modularity").into());
        }
        for (name, frac) in [("active_frac", p.active_frac), ("moved_frac", p.moved_frac)] {
            if !(0.0..=1.0).contains(&frac) {
                return Err(format!("{at}: {name} {frac} outside [0,1]").into());
            }
        }
        if p.driver.is_empty() || p.phase.is_empty() {
            return Err(format!("{at}: empty driver or phase").into());
        }
    }
    for (i, ev) in trace.metrics.iter().enumerate() {
        let at = format!("{path}: metrics event {i} (round {})", ev.round);
        if ev.scope != "phase1" && ev.scope != "sync" {
            return Err(format!("{at} has unknown scope `{}`", ev.scope).into());
        }
        for (name, g) in ev.registry.gauges() {
            if !g.is_finite() {
                return Err(format!("{at} gauge `{name}` is non-finite").into());
            }
        }
        let (sampled, fns) = (
            ev.registry.counter("pruning/audit_sampled").unwrap_or(0),
            ev.registry
                .counter("pruning/audit_false_negatives")
                .unwrap_or(0),
        );
        if fns > sampled {
            return Err(format!(
                "{at} reports more audit false negatives ({fns}) than samples ({sampled})"
            )
            .into());
        }
    }
    Ok(format!(
        "ok: {} events ({} supersteps, {} rounds, {} span trees, {} syncs, \
         {} metrics, {} profiles, {} logs, {} progress), final Q = {:.5}",
        trace.events,
        trace.supersteps.len(),
        trace.round_ends.max(end.rounds),
        trace.span_checks.len(),
        trace.syncs.len(),
        trace.metrics.len(),
        trace.profiles.len(),
        trace.logs.len(),
        trace.progress.len(),
        end.modularity,
    ))
}

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
const SPARK_WIDTH: usize = 40;

/// Renders a series as a fixed-width sparkline; longer series are bucketed
/// by averaging so the rows of a table stay aligned. Shared with `trend`.
pub(crate) fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let buckets: Vec<f64> = if values.len() <= SPARK_WIDTH {
        values.to_vec()
    } else {
        (0..SPARK_WIDTH)
            .map(|b| {
                let lo = b * values.len() / SPARK_WIDTH;
                let hi = ((b + 1) * values.len() / SPARK_WIDTH).max(lo + 1);
                values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect()
    };
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &buckets {
        min = min.min(v);
        max = max.max(v);
    }
    buckets
        .iter()
        .map(|&v| {
            if max > min {
                let i = ((v - min) / (max - min) * 7.0).round() as usize;
                SPARK[i.min(7)]
            } else {
                SPARK[3]
            }
        })
        .collect()
}

fn stats(values: &[f64]) -> (f64, f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    (min, mean, *values.last().unwrap())
}

fn curve_row(name: &str, values: &[f64]) -> String {
    let (min, mean, last) = stats(values);
    format!(
        "  {name:<22} {:<w$}  {min:>10.4} {mean:>10.4} {last:>10.4}\n",
        sparkline(values),
        w = SPARK_WIDTH,
    )
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The per-superstep metric curves of a trace, in render order.
fn curves(trace: &Trace) -> Vec<(&'static str, Vec<f64>)> {
    let ss = &trace.supersteps;
    let mut out = vec![
        (
            "modularity",
            ss.iter().map(|s| s.modularity).collect::<Vec<_>>(),
        ),
        (
            "moved rate",
            ss.iter().map(|s| ratio(s.moved, s.active)).collect(),
        ),
        (
            "pruned rate",
            ss.iter()
                .map(|s| ratio(s.pruned, s.active + s.pruned))
                .collect(),
        ),
        (
            "hash occupancy",
            ss.iter().map(|s| s.hash_occupancy).collect(),
        ),
        (
            "hash evictions",
            ss.iter().map(|s| s.hash_evictions as f64).collect(),
        ),
        (
            "divergence %",
            ss.iter()
                .map(|s| s.decide_tally.divergence() * 100.0)
                .collect(),
        ),
        (
            "coalescing eff",
            ss.iter()
                .map(|s| s.decide_tally.coalescing_efficiency())
                .collect(),
        ),
    ];
    if !trace.syncs.is_empty() {
        let bytes = ss
            .iter()
            .map(|s| {
                trace
                    .syncs
                    .iter()
                    .filter(|y| y.superstep == s.superstep && s.round == 0)
                    .map(|y| y.bytes as f64)
                    .sum()
            })
            .collect();
        out.push(("sync KiB", scale(bytes, 1.0 / 1024.0)));
    }
    out
}

fn scale(values: Vec<f64>, k: f64) -> Vec<f64> {
    values.into_iter().map(|v| v * k).collect()
}

/// One row of the span summary: slash-joined path plus cycle attribution.
struct SpanRow {
    path: String,
    invocations: u64,
    self_cycles: f64,
    total_cycles: f64,
}

fn flatten_spans(span: &SpanRecord, prefix: &str, cost: &CostModel, out: &mut Vec<SpanRow>) {
    for child in &span.children {
        let path = if prefix.is_empty() {
            child.name.clone()
        } else {
            format!("{prefix}/{}", child.name)
        };
        out.push(SpanRow {
            path: path.clone(),
            invocations: child.invocations,
            self_cycles: child.self_cycles(cost),
            total_cycles: child.total_cycles(cost),
        });
        flatten_spans(child, &path, cost, out);
    }
}

/// Flamegraph-style top-N table: spans ranked by self cycles under the
/// default cost model, with a share bar against the busiest span.
fn render_span_summary(trace: &Trace, top: usize) -> String {
    let cost = CostModel::default();
    let mut rows = Vec::new();
    flatten_spans(&trace.merged_root, "", &cost, &mut rows);
    if rows.is_empty() {
        return "no span events in trace (produced by an older build?)\n".to_string();
    }
    let total_self: f64 = rows.iter().map(|r| r.self_cycles).sum();
    rows.sort_by(|a, b| {
        b.self_cycles
            .partial_cmp(&a.self_cycles)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.path.cmp(&b.path))
    });
    let shown = rows.len().min(top.max(1));
    let max_self = rows[0].self_cycles.max(1.0);
    let width = rows[..shown].iter().map(|r| r.path.len()).max().unwrap();
    let mut out = format!(
        "top {shown} spans by self cycles (of {} total)\n",
        rows.len()
    );
    out.push_str(&format!(
        "  {:<width$} {:>12} {:>12} {:>7} {:>7}\n",
        "span", "self cyc", "total cyc", "inv", "share"
    ));
    for r in &rows[..shown] {
        let bar_len = ((r.self_cycles / max_self) * 20.0).round() as usize;
        out.push_str(&format!(
            "  {:<width$} {:>12.0} {:>12.0} {:>7} {:>6.1}% {}\n",
            r.path,
            r.self_cycles,
            r.total_cycles,
            r.invocations,
            100.0 * r.self_cycles / total_self.max(1e-12),
            "█".repeat(bar_len),
        ));
    }
    out
}

/// Algorithm-metric section: all `metrics` events merged into one registry
/// (counters add, histograms fold, gauges keep the last value). Returns the
/// empty string for schema-2 traces so older golden outputs stay valid.
fn render_metrics(trace: &Trace) -> String {
    if trace.metrics.is_empty() {
        return String::new();
    }
    let mut merged = MetricsRegistry::new();
    for ev in &trace.metrics {
        merged.merge(&ev.registry);
    }
    let mut out = format!(
        "\nalgorithm metrics ({} events merged)\n",
        trace.metrics.len()
    );
    for (name, v) in merged.counters() {
        out.push_str(&format!("  {name:<34} {v}\n"));
    }
    for (name, v) in merged.gauges() {
        out.push_str(&format!("  {name:<34} {v:.4}\n"));
    }
    for (name, h) in merged.histograms() {
        let max = h.max().map_or_else(|| "-".to_string(), |m| m.to_string());
        out.push_str(&format!(
            "  {name:<34} n={} mean={:.1} max={max}\n",
            h.count(),
            h.mean(),
        ));
    }
    out
}

/// Profile-event section: a one-line inventory pointing at `gala
/// profile` (the join itself needs a second trace). Empty for pre-schema-4
/// traces so older golden outputs stay valid.
fn render_profiles(trace: &Trace) -> String {
    if trace.profiles.is_empty() {
        return String::new();
    }
    let cycles = trace.profiles.iter().filter(|p| p.unit == "cycles").count();
    let mut backends: Vec<&str> = trace.profiles.iter().map(|p| p.backend.as_str()).collect();
    backends.sort_unstable();
    backends.dedup();
    format!(
        "\nprofile events: {} ({cycles} cycle-charged, {} wall-ns; backends {}) — \
         pair with the other backend's trace via `gala profile`\n",
        trace.profiles.len(),
        trace.profiles.len() - cycles,
        backends.join(", "),
    )
}

/// Flight-recorder inventory: one pointer line when the trace carries
/// `log`/`progress` events, the empty string otherwise (so pre-schema-5
/// golden outputs stay byte-identical).
fn render_recorder_summary(trace: &Trace) -> String {
    if trace.logs.is_empty() && trace.progress.is_empty() {
        return String::new();
    }
    format!(
        "\nflight recorder: {} log lines, {} progress snapshots (print with --logs)\n",
        trace.logs.len(),
        trace.progress.len()
    )
}

/// The `--logs` section: deterministic progress snapshots, then the drained
/// ring lines with their elapsed stamps.
fn render_logs(trace: &Trace) -> String {
    if trace.logs.is_empty() && trace.progress.is_empty() {
        return "no flight-recorder events in trace (write one with \
                `gala detect --progress` and GALA_LOG set)\n"
            .to_string();
    }
    let mut out = String::new();
    if !trace.progress.is_empty() {
        out.push_str(&format!(
            "\nprogress snapshots ({})\n",
            trace.progress.len()
        ));
        for p in &trace.progress {
            out.push_str(&format!("  {}\n", p.render_line()));
        }
    }
    if !trace.logs.is_empty() {
        out.push_str(&format!(
            "\nflight-recorder log ({} lines, first seq {})\n",
            trace.logs.len(),
            trace.logs[0].seq
        ));
        for l in &trace.logs {
            out.push_str(&format!(
                "  [{:>9.3}s] {:<5} {}: {}\n",
                l.elapsed_us as f64 / 1e6,
                l.level.as_str(),
                l.scope,
                l.message
            ));
        }
    }
    out
}

/// Full single-trace report: header, curves, span summary.
fn render_single(path: &str, trace: &Trace, top: usize) -> String {
    let mut out = format!(
        "trace: {path}\nalgorithm {} | n {} | m {} | devices {}\n",
        trace.algorithm, trace.n, trace.m, trace.devices
    );
    if let Some(end) = trace.run_end {
        out.push_str(&format!(
            "supersteps {} | rounds {} | final Q {:.5} | total cycles {:.0}\n",
            trace.supersteps.len(),
            end.rounds,
            end.modularity,
            end.total_cycles
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "  {:<22} {:<w$}  {:>10} {:>10} {:>10}\n",
        "per-superstep",
        "curve",
        "min",
        "mean",
        "last",
        w = SPARK_WIDTH
    ));
    for (name, values) in curves(trace) {
        out.push_str(&curve_row(name, &values));
    }
    out.push('\n');
    out.push_str(&render_span_summary(trace, top));
    out.push_str(&render_metrics(trace));
    out.push_str(&render_profiles(trace));
    out.push_str(&render_recorder_summary(trace));
    out
}

/// Simulated cycles per exported microsecond: the cost model has no wall
/// clock, so the exporter nominates a 1 GHz device — slice *ratios* are
/// what matter in the timeline, not absolute times.
const CYCLES_PER_US: f64 = 1000.0;

fn chrome_slice(name: &str, ts: f64, dur: f64, tid: u64) -> json::Value {
    json::Value::object()
        .set("name", name)
        .set("ph", "X")
        .set("ts", ts)
        .set("dur", dur)
        .set("pid", 0u64)
        .set("tid", tid)
}

fn chrome_counter(name: &str, ts: f64, value: f64) -> json::Value {
    json::Value::object()
        .set("name", name)
        .set("ph", "C")
        .set("ts", ts)
        .set("pid", 0u64)
        .set("tid", 0u64)
        .set("args", json::Value::object().set("value", value))
}

fn chrome_meta(name: &str, tid: u64, value: &str) -> json::Value {
    json::Value::object()
        .set("name", name)
        .set("ph", "M")
        .set("pid", 0u64)
        .set("tid", tid)
        .set("args", json::Value::object().set("name", value))
}

/// Lays a span and its children out as nested "X" slices starting at
/// `start_us`; children are placed sequentially (the simulator runs kernels
/// back to back, so sequential layout reproduces the modelled order).
/// Returns the span's duration.
fn push_span_slices(
    span: &SpanRecord,
    start_us: f64,
    cost: &CostModel,
    events: &mut Vec<json::Value>,
) -> f64 {
    let dur = span.total_cycles(cost) / CYCLES_PER_US;
    events.push(chrome_slice(&span.name, start_us, dur, 0));
    let mut child_start = start_us;
    for child in &span.children {
        child_start += push_span_slices(child, child_start, cost, events);
    }
    dur
}

/// Converts a loaded trace (with retained span trees) into Chrome Trace
/// Event Format: one `{"traceEvents": [...]}` object with "X" slices for
/// span trees, "C" counters for the per-superstep algorithm curves, and
/// tid-1 slices for inter-device syncs. Loadable in Perfetto and
/// `chrome://tracing`. Traces without span events fall back to one slice
/// per superstep built from the decide/weight tallies, so the export is
/// never empty for a well-formed trace.
fn chrome_trace(trace: &Trace) -> json::Value {
    let cost = CostModel::default();
    let mut events = vec![
        chrome_meta("process_name", 0, "gala (simulated GPU)"),
        chrome_meta("thread_name", 0, "kernels"),
        chrome_meta("thread_name", 1, "sync"),
    ];
    let mut cursor = 0.0_f64;
    // Start timestamp of each (round, superstep), for counters and syncs.
    let mut superstep_ts: Vec<((u64, u64), f64)> = Vec::new();
    if trace.span_trees.is_empty() {
        for s in &trace.supersteps {
            let dur = (cost.cycles(&s.decide_tally) + cost.cycles(&s.weight_tally)) / CYCLES_PER_US;
            let name = format!("superstep r{} s{}", s.round, s.superstep);
            events.push(chrome_slice(&name, cursor, dur, 0));
            superstep_ts.push(((s.round, s.superstep), cursor));
            cursor += dur;
        }
    } else {
        for tree in &trace.span_trees {
            let dur = tree.root.total_cycles(&cost) / CYCLES_PER_US;
            let name = format!("{} r{} s{}", tree.phase, tree.round, tree.superstep);
            events.push(chrome_slice(&name, cursor, dur, 0));
            let mut child_start = cursor;
            for child in &tree.root.children {
                child_start += push_span_slices(child, child_start, &cost, &mut events);
            }
            if tree.phase == "phase1" {
                superstep_ts.push(((tree.round, tree.superstep), cursor));
            }
            cursor += dur;
        }
    }
    let ts_of = |round: u64, superstep: u64| {
        superstep_ts
            .iter()
            .find(|(k, _)| *k == (round, superstep))
            .map(|(_, t)| *t)
    };
    for s in &trace.supersteps {
        if let Some(ts) = ts_of(s.round, s.superstep) {
            events.push(chrome_counter("modularity", ts, s.modularity));
            events.push(chrome_counter("active", ts, s.active as f64));
            events.push(chrome_counter("moved", ts, s.moved as f64));
            events.push(chrome_counter("pruned", ts, s.pruned as f64));
        }
    }
    // Sync slices carry real modelled microseconds (comm_us); place each at
    // its superstep's start when known, else pack them sequentially.
    let mut sync_cursor = 0.0_f64;
    for y in &trace.syncs {
        let ts = ts_of(0, y.superstep).unwrap_or(sync_cursor);
        let name = format!("{} sync ({} B)", y.mode, y.bytes);
        events.push(chrome_slice(&name, ts, y.comm_us.max(0.0), 1));
        sync_cursor = ts + y.comm_us.max(0.0);
    }
    json::Value::object().set("traceEvents", json::Value::Array(events))
}

/// Loads `trace_path` with span trees retained and writes the Chrome Trace
/// Event export to `out_path`. Returns the number of exported events.
fn export_chrome_trace(trace_path: &str, out_path: &str) -> Result<usize, Error> {
    let trace = load_trace_with_spans(trace_path, true)?;
    let doc = chrome_trace(&trace);
    let count = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .map_or(0, <[json::Value]>::len);
    std::fs::write(out_path, doc.render()).map_err(|e| format!("{out_path}: {e}"))?;
    Ok(count)
}

/// One watched metric for two-trace diffing.
struct Watched {
    name: &'static str,
    value: f64,
    higher_is_better: bool,
}

/// The watched-metric vector of a trace: scalars whose movement between two
/// runs of the same workload indicates a quality or efficiency change.
fn watched_metrics(trace: &Trace) -> Vec<Watched> {
    let decide_total: MemTally = trace
        .supersteps
        .iter()
        .map(|s| s.decide_tally)
        .fold(MemTally::new(), |a, b| a + b);
    let contract_total: MemTally = trace
        .span_checks
        .iter()
        .filter(|s| s.phase == "contract")
        .map(|s| s.tally)
        .fold(MemTally::new(), |a, b| a + b);
    let final_q = trace
        .run_end
        .map(|e| e.modularity)
        .or_else(|| trace.supersteps.last().map(|s| s.modularity))
        .unwrap_or(0.0);
    let w = |name, value, higher_is_better| Watched {
        name,
        value,
        higher_is_better,
    };
    vec![
        w("final modularity", final_q, true),
        w("supersteps", trace.supersteps.len() as f64, false),
        w(
            "total cycles",
            trace.run_end.map(|e| e.total_cycles).unwrap_or(0.0),
            false,
        ),
        // Phase-2 cost: the modelled cycles of every contract span. The
        // run_end total covers phase 1 only, so without this a contraction
        // slowdown would sail through a diff unnoticed.
        w(
            "contract cycles",
            CostModel::default().cycles(&contract_total),
            false,
        ),
        w("divergence", decide_total.divergence(), false),
        w(
            "coalescing efficiency",
            decide_total.coalescing_efficiency(),
            true,
        ),
        w(
            "hash evictions",
            trace
                .supersteps
                .iter()
                .map(|s| s.hash_evictions)
                .sum::<u64>() as f64,
            false,
        ),
        w(
            "sync bytes",
            trace.syncs.iter().map(|s| s.bytes).sum::<u64>() as f64,
            false,
        ),
    ]
}

/// Counts print whole, small ratios with four decimals. Shared with
/// `trend`.
pub(crate) fn fmt_value(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

/// Relative change current-vs-baseline; zero baselines compare as equal
/// when the current value is also zero and as a full-scale change else.
/// Shared with `trend`.
pub(crate) fn rel_change(current: f64, baseline: f64) -> f64 {
    if baseline == 0.0 && current == 0.0 {
        0.0
    } else if baseline == 0.0 {
        current.signum()
    } else {
        (current - baseline) / baseline.abs()
    }
}

/// Diffs `trace` against `baseline`; the second element lists the names of
/// metrics that regressed beyond `threshold`.
fn render_diff(
    trace_path: &str,
    trace: &Trace,
    baseline_path: &str,
    baseline: &Trace,
    threshold: f64,
) -> (String, Vec<String>) {
    let cur = watched_metrics(trace);
    let base = watched_metrics(baseline);
    let mut out = format!(
        "diff: {trace_path} vs baseline {baseline_path} (threshold {:.1}%)\n",
        threshold * 100.0
    );
    out.push_str(&format!(
        "  {:<22} {:>12} {:>12} {:>9}  {}\n",
        "metric", "baseline", "current", "change", "verdict"
    ));
    let mut regressions = Vec::new();
    for (c, b) in cur.iter().zip(&base) {
        debug_assert_eq!(c.name, b.name);
        // Degenerate traces (empty, or with corrupt non-finite values) must
        // not poison the verdict with NaN comparisons; treat as no change.
        let raw = rel_change(c.value, b.value);
        let change = if raw.is_finite() { raw } else { 0.0 };
        let bad = if c.higher_is_better { -change } else { change };
        let verdict = if bad > threshold {
            regressions.push(c.name.to_string());
            "REGRESSED"
        } else if bad < -threshold {
            "improved"
        } else {
            "ok"
        };
        out.push_str(&format!(
            "  {:<22} {:>12} {:>12} {:>+8.1}%  {verdict}\n",
            c.name,
            fmt_value(b.value),
            fmt_value(c.value),
            change * 100.0
        ));
    }
    (out, regressions)
}

/// Detects a crash dump: a file holding one JSON object with `kind:
/// "crash"` (as written by the panic hook) rather than JSONL trace lines.
/// Returns `None` when the file is not a crash dump, the validation
/// verdict when it is.
fn try_crash_dump(path: &str) -> Option<Result<String, Error>> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = json::parse(&text).ok()?;
    if doc.get("kind").and_then(json::Value::as_str) != Some("crash") {
        return None;
    }
    Some(
        recorder::validate_crash_dump(&doc).map_err(|e| -> Error { format!("{path}: {e}").into() }),
    )
}

/// Executes the `analyze` subcommand. Errors (including diff regressions)
/// surface as a non-zero exit through the caller.
pub fn run(args: &AnalyzeArgs) -> Result<(), Error> {
    if let Some(out) = &args.chrome_trace {
        let count = export_chrome_trace(&args.trace, out)?;
        println!("wrote {count} trace events to {out} (open in https://ui.perfetto.dev)");
        return Ok(());
    }
    // Crash dumps validate (structure, manifest, contiguous event window)
    // under any mode; they have no curves to render.
    if let Some(verdict) = try_crash_dump(&args.trace) {
        println!("{}", verdict?);
        return Ok(());
    }
    let trace = load_trace(&args.trace)?;
    if args.check {
        println!("{}", check(&args.trace, &trace)?);
        return Ok(());
    }
    if args.logs {
        print!("{}", render_logs(&trace));
        return Ok(());
    }
    match &args.baseline {
        None => print!("{}", render_single(&args.trace, &trace, args.top)),
        Some(bp) => {
            let base = load_trace(bp)?;
            let (text, regressions) = render_diff(&args.trace, &trace, bp, &base, args.threshold);
            print!("{text}");
            if !regressions.is_empty() {
                return Err(format!(
                    "{} metric(s) regressed beyond {:.1}%: {}",
                    regressions.len(),
                    args.threshold * 100.0,
                    regressions.join(", ")
                )
                .into());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gala_core::louvain::{Louvain, LouvainConfig};
    use gala_core::multi_gpu::{run_full_traced, ContractMode, MultiGpuConfig};
    use gala_graph::generators::fixtures;
    use gala_telemetry::JsonlSink;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("gala_analyze_{name}_{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    /// Runs the instrumented Louvain driver on a fixture and writes a real
    /// trace file; returns its path.
    fn write_fixture_trace(name: &str) -> String {
        let g = fixtures::ring_of_cliques(6, 5);
        let mut sink = JsonlSink::new(Vec::new());
        let mut prof = Profiler::disabled();
        Louvain::new(LouvainConfig::default()).run_instrumented(&g, &mut sink, &mut prof);
        let path = format!("{}.jsonl", tmp(name));
        std::fs::write(&path, sink.into_inner()).unwrap();
        path
    }

    /// Runs the multi-device full hierarchy with the partitioned phase-2
    /// contraction and writes its trace; returns the path.
    fn write_mg_fixture_trace(name: &str) -> String {
        let g = fixtures::ring_of_cliques(8, 6);
        let mut sink = JsonlSink::new(Vec::new());
        run_full_traced(
            &g,
            MultiGpuConfig {
                num_devices: 4,
                contract: ContractMode::Partitioned,
                ..MultiGpuConfig::default()
            },
            &mut sink,
        );
        let path = format!("{}.jsonl", tmp(name));
        std::fs::write(&path, sink.into_inner()).unwrap();
        path
    }

    #[test]
    fn partitioned_traces_decode_and_check_exchange_accounting() {
        let path = write_mg_fixture_trace("mgload");
        let trace = load_trace(&path).unwrap();
        assert_eq!(trace.algorithm, "multi-gpu");
        assert_eq!(trace.devices, 4);
        let exchanges: Vec<ExchangeCheck> = trace
            .span_checks
            .iter()
            .filter_map(|s| s.exchange)
            .collect();
        assert!(
            !exchanges.is_empty(),
            "partitioned run must emit exchange-scoped contract spans"
        );
        let syncs: Vec<&SyncEvent> = trace
            .syncs
            .iter()
            .filter(|y| y.mode.starts_with("exchange-"))
            .collect();
        assert_eq!(syncs.len(), exchanges.len());
        let summary = check(&path, &trace).unwrap();
        assert!(summary.starts_with("ok:"), "{summary}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn check_rejects_corrupt_exchange_accounting() {
        let path = write_mg_fixture_trace("mgbad");
        let trace = load_trace(&path).unwrap();
        let span_at = trace
            .span_checks
            .iter()
            .position(|s| s.exchange.is_some())
            .expect("an exchange span");
        // Sparse byte model no longer matches the ghost row counts.
        let mut bad_model = trace.clone();
        bad_model.span_checks[span_at]
            .exchange
            .as_mut()
            .unwrap()
            .sparse_bytes += 1;
        let err = check(&path, &bad_model).unwrap_err().to_string();
        assert!(err.contains("sparse bytes"), "{err}");
        // Both strategies claimed for one round.
        let mut bad_strategy = trace.clone();
        {
            let ex = bad_strategy.span_checks[span_at].exchange.as_mut().unwrap();
            ex.dense_exchanges = 1;
            ex.sparse_exchanges = 1;
        }
        let err = check(&path, &bad_strategy).unwrap_err().to_string();
        assert!(err.contains("exactly one"), "{err}");
        // Payload bytes disagree with the selected strategy.
        let mut bad_payload = trace.clone();
        bad_payload.span_checks[span_at]
            .exchange
            .as_mut()
            .unwrap()
            .bytes += 8;
        let err = check(&path, &bad_payload).unwrap_err().to_string();
        assert!(err.contains("selected strategy"), "{err}");
        // Sync event out of step with its contract span.
        let sync_at = trace
            .syncs
            .iter()
            .position(|y| y.mode.starts_with("exchange-"))
            .expect("an exchange sync");
        let mut bad_sync_bytes = trace.clone();
        bad_sync_bytes.syncs[sync_at].bytes += 4;
        let err = check(&path, &bad_sync_bytes).unwrap_err().to_string();
        assert!(err.contains("disagrees"), "{err}");
        let mut bad_sync_mode = trace.clone();
        bad_sync_mode.syncs[sync_at].mode = "exchange-upside-down".into();
        let err = check(&path, &bad_sync_mode).unwrap_err().to_string();
        assert!(err.contains("unknown mode"), "{err}");
        // A dropped sync event breaks the 1:1 pairing.
        let mut missing_sync = trace.clone();
        missing_sync.syncs.remove(sync_at);
        let err = check(&path, &missing_sync).unwrap_err().to_string();
        assert!(err.contains("exchange sync events"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn loads_and_checks_a_real_trace() {
        let path = write_fixture_trace("load");
        let trace = load_trace(&path).unwrap();
        assert_eq!(trace.algorithm, "louvain");
        assert_eq!(trace.n, 30);
        assert!(!trace.supersteps.is_empty());
        assert!(
            !trace.span_checks.is_empty(),
            "instrumented run must emit spans"
        );
        assert!(
            trace.merged_root.child("decide").is_some(),
            "merged profile must hold the decide subtree"
        );
        assert!(trace.run_end.is_some());
        let summary = check(&path, &trace).unwrap();
        assert!(summary.starts_with("ok:"), "{summary}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn render_single_covers_curves_and_spans() {
        let path = write_fixture_trace("render");
        let trace = load_trace(&path).unwrap();
        let text = render_single(&path, &trace, 10);
        for needle in [
            "modularity",
            "divergence %",
            "coalescing eff",
            "hash occupancy",
            "top ",
            "decide",
            "weight_update",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Sparklines use the block glyphs.
        assert!(SPARK.iter().any(|&c| text.contains(c)));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn self_identical_diff_has_no_regressions() {
        let path = write_fixture_trace("selfdiff");
        let trace = load_trace(&path).unwrap();
        let (text, regressions) = render_diff(&path, &trace, &path, &trace, 0.1);
        assert!(regressions.is_empty(), "{text}");
        assert!(text.contains("ok"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn diff_flags_modularity_regression() {
        let path = write_fixture_trace("regress");
        let baseline = load_trace(&path).unwrap();
        let mut worse = baseline.clone();
        // A run that lost a third of its modularity and doubled its cycles
        // must trip the default 10% gate on both watched metrics.
        if let Some(end) = worse.run_end.as_mut() {
            end.modularity *= 0.5;
            end.total_cycles *= 2.0;
        }
        let (text, regressions) = render_diff(&path, &worse, &path, &baseline, 0.1);
        assert!(
            regressions.contains(&"final modularity".to_string()),
            "{text}"
        );
        assert!(regressions.contains(&"total cycles".to_string()), "{text}");
        assert!(text.contains("REGRESSED"));
        // The same delta passes with a huge threshold.
        let (_, loose) = render_diff(&path, &worse, &path, &baseline, 5.0);
        assert!(loose.is_empty());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn diff_flags_contract_regression() {
        let path = write_fixture_trace("contract");
        let baseline = load_trace(&path).unwrap();
        assert!(
            baseline.span_checks.iter().any(|s| s.phase == "contract"),
            "instrumented run must emit contract spans"
        );
        let mut worse = baseline.clone();
        for sc in worse
            .span_checks
            .iter_mut()
            .filter(|s| s.phase == "contract")
        {
            sc.tally.global_loads *= 4;
            sc.tally.global_stores *= 4;
        }
        let (text, regressions) = render_diff(&path, &worse, &path, &baseline, 0.1);
        assert!(
            regressions.contains(&"contract cycles".to_string()),
            "{text}"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        let path = format!("{}.jsonl", tmp("bad"));
        // Not JSON at all.
        std::fs::write(&path, "not json\n").unwrap();
        assert!(load_trace(&path).is_err());
        // Wrong schema version.
        std::fs::write(&path, "{\"event\":\"run_end\",\"schema\":1}\n").unwrap();
        let err = load_trace(&path).unwrap_err().to_string();
        assert!(err.contains("schema 1"), "{err}");
        // Unknown event kind.
        std::fs::write(
            &path,
            format!("{{\"event\":\"mystery\",\"schema\":{SCHEMA_VERSION}}}\n"),
        )
        .unwrap();
        assert!(load_trace(&path)
            .unwrap_err()
            .to_string()
            .contains("mystery"));
        // Empty file.
        std::fs::write(&path, "").unwrap();
        assert!(load_trace(&path).unwrap_err().to_string().contains("empty"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn check_rejects_broken_invariants() {
        let path = write_fixture_trace("inv");
        let mut trace = load_trace(&path).unwrap();
        // A truncated trace (no run_end) fails.
        let mut truncated = trace.clone();
        truncated.run_end = None;
        assert!(check(&path, &truncated).is_err());
        // Superstep counting must balance.
        trace.supersteps[0].moved += 1;
        let err = check(&path, &trace).unwrap_err().to_string();
        assert!(err.contains("active"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn sparkline_is_width_bounded_and_monotone() {
        assert_eq!(sparkline(&[]), "");
        let flat = sparkline(&[2.0, 2.0, 2.0]);
        assert_eq!(flat.chars().count(), 3);
        assert!(flat.chars().all(|c| c == SPARK[3]));
        let ramp: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let s = sparkline(&ramp);
        assert_eq!(s.chars().count(), SPARK_WIDTH);
        assert_eq!(s.chars().next(), Some(SPARK[0]));
        assert_eq!(s.chars().last(), Some(SPARK[7]));
    }

    #[test]
    fn traced_runs_decode_and_render_metrics_events() {
        let path = write_fixture_trace("metrics");
        let trace = load_trace(&path).unwrap();
        assert!(
            !trace.metrics.is_empty(),
            "instrumented run must emit metrics events"
        );
        for ev in &trace.metrics {
            assert_eq!(ev.scope, "phase1");
            assert!(ev.registry.counter("phase1/supersteps").unwrap_or(0) > 0);
        }
        let summary = check(&path, &trace).unwrap();
        assert!(summary.contains("metrics"), "{summary}");
        let text = render_single(&path, &trace, 10);
        assert!(text.contains("algorithm metrics"), "{text}");
        assert!(text.contains("pruning/active"), "{text}");
        assert!(text.contains("kernel/"), "{text}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn profile_events_decode_check_and_render() {
        let path = write_fixture_trace("profiles");
        let trace = load_trace(&path).unwrap();
        assert!(
            !trace.profiles.is_empty(),
            "instrumented run must emit profile events"
        );
        for ev in &trace.profiles {
            assert_eq!(ev.backend, "sim");
            assert_eq!(ev.unit, "cycles");
            assert!(ev.phase == "phase1" || ev.phase == "contract");
            for span in &ev.spans {
                assert_eq!(span.components.total(), span.total, "{}", span.path);
            }
        }
        let summary = check(&path, &trace).unwrap();
        assert!(summary.contains("profiles"), "{summary}");
        let text = render_single(&path, &trace, 10);
        assert!(text.contains("profile events:"), "{text}");
        assert!(text.contains("gala profile"), "{text}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn check_rejects_bad_profile_events() {
        let path = write_fixture_trace("badprofiles");
        let trace = load_trace(&path).unwrap();
        let mut bad_unit = trace.clone();
        bad_unit.profiles[0].unit = "seconds".into();
        let err = check(&path, &bad_unit).unwrap_err().to_string();
        assert!(err.contains("unknown unit"), "{err}");
        let mut bad_phase = trace.clone();
        bad_phase.profiles[0].phase = "phase9".into();
        let err = check(&path, &bad_phase).unwrap_err().to_string();
        assert!(err.contains("unknown phase"), "{err}");
        let mut bad_sum = trace;
        let ev = bad_sum
            .profiles
            .iter_mut()
            .find(|p| p.spans.iter().any(|s| s.total > 0.0))
            .expect("a charged profile event");
        let span = ev.spans.iter_mut().find(|s| s.total > 0.0).unwrap();
        span.components.compute += 1.0;
        let err = check(&path, &bad_sum).unwrap_err().to_string();
        assert!(err.contains("components sum"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn schema_errors_name_the_offending_event() {
        let path = format!("{}.jsonl", tmp("schemaidx"));
        std::fs::write(
            &path,
            format!(
                "{{\"event\":\"round_end\",\"schema\":{SCHEMA_VERSION}}}\n\
                 {{\"event\":\"run_end\",\"schema\":99}}\n"
            ),
        )
        .unwrap();
        let err = load_trace(&path).unwrap_err().to_string();
        assert!(err.contains("event 1"), "{err}");
        assert!(err.contains("schema 99"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn check_rejects_bad_metrics_events() {
        let path = write_fixture_trace("badmetrics");
        let trace = load_trace(&path).unwrap();
        let mut bad_scope = trace.clone();
        bad_scope.metrics[0].scope = "phase9".into();
        let err = check(&path, &bad_scope).unwrap_err().to_string();
        assert!(err.contains("unknown scope"), "{err}");
        let mut bad_gauge = trace.clone();
        bad_gauge.metrics[0]
            .registry
            .gauge("phase1/moved_fraction", f64::NAN);
        let err = check(&path, &bad_gauge).unwrap_err().to_string();
        assert!(err.contains("non-finite"), "{err}");
        let mut bad_audit = trace;
        bad_audit.metrics[0]
            .registry
            .inc("pruning/audit_false_negatives", 1_000_000);
        let err = check(&path, &bad_audit).unwrap_err().to_string();
        assert!(err.contains("false negatives"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn schema_2_traces_still_load() {
        // The checked-in golden trace was written by a schema-2 build; the
        // range check must keep accepting it while rejecting schema 1.
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data");
        let trace = load_trace(&format!("{dir}/small_trace.jsonl")).unwrap();
        assert!(trace.metrics.is_empty());
        assert!(trace.run_end.is_some());
    }

    #[test]
    fn chrome_trace_export_is_valid_and_nested() {
        let path = write_fixture_trace("chrome");
        let out = format!("{}.chrome.json", tmp("chrome_out"));
        let count = export_chrome_trace(&path, &out).unwrap();
        assert!(count > 0);
        // The written file must parse as one JSON object with a non-empty
        // traceEvents array (the format Perfetto loads).
        let doc = json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), count);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert!(phases.contains(&"M"), "metadata events present");
        assert!(phases.contains(&"X"), "slice events present");
        assert!(phases.contains(&"C"), "counter events present");
        for e in events {
            assert!(e.get("pid").is_some() && e.get("tid").is_some());
            if e.get("ph").unwrap().as_str() == Some("X") {
                let ts = e.get("ts").unwrap().as_f64().unwrap();
                let dur = e.get("dur").unwrap().as_f64().unwrap();
                assert!(ts >= 0.0 && dur >= 0.0, "negative slice timing");
            }
        }
        // Child kernel spans appear as their own slices inside the tree.
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(json::Value::as_str))
            .collect();
        assert!(names.iter().any(|n| n.starts_with("phase1 r")), "{names:?}");
        assert!(names.contains(&"decide"), "{names:?}");
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(out);
    }

    #[test]
    fn chrome_trace_falls_back_to_superstep_slices_without_spans() {
        let path = write_fixture_trace("chromefb");
        let mut trace = load_trace_with_spans(&path, true).unwrap();
        trace.span_trees.clear();
        let doc = chrome_trace(&trace);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let slices = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .count();
        assert_eq!(slices, trace.supersteps.len());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn render_handles_degenerate_traces() {
        // Single-superstep trace: flat curves, no panic, still renders.
        let path = write_fixture_trace("degen");
        let mut one = load_trace(&path).unwrap();
        one.supersteps.truncate(1);
        one.metrics.truncate(1);
        let text = render_single(&path, &one, 10);
        assert!(text.contains("modularity"));
        // All-equal series sparkline collapses to the mid glyph.
        assert_eq!(sparkline(&[7.0]), SPARK[3].to_string());
        // An empty trace diffs against itself without NaN verdicts.
        let empty = Trace::default();
        let (text, regressions) = render_diff("a", &empty, "b", &empty, 0.1);
        assert!(regressions.is_empty(), "{text}");
        assert!(!text.contains("NaN"), "{text}");
        // A corrupt non-finite watched value must not regress or panic.
        let mut nan_trace = one.clone();
        if let Some(end) = nan_trace.run_end.as_mut() {
            end.total_cycles = f64::NAN;
        }
        let (text, regressions) = render_diff(&path, &nan_trace, &path, &one, 0.1);
        assert!(!regressions.contains(&"total cycles".to_string()), "{text}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rel_change_handles_zero_baselines() {
        assert_eq!(rel_change(0.0, 0.0), 0.0);
        assert_eq!(rel_change(5.0, 0.0), 1.0);
        assert_eq!(rel_change(-5.0, 0.0), -1.0);
        assert!((rel_change(11.0, 10.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn log_and_progress_events_load_check_and_render() {
        let path = write_fixture_trace("recorder");
        // The instrumented run already emits deterministic progress events;
        // append a drained ring window behind run_end (the order `detect
        // --progress` writes).
        let mut text = std::fs::read_to_string(&path).unwrap();
        for seq in 3..6u64 {
            let ev = LogEvent {
                seq,
                elapsed_us: seq * 1000,
                level: gala_telemetry::Level::Info,
                scope: "louvain".into(),
                message: format!("line {seq}"),
                fields: vec![("round".into(), seq as f64)],
            };
            text.push_str(&ev.to_json().render());
            text.push('\n');
        }
        std::fs::write(&path, &text).unwrap();
        let trace = load_trace(&path).unwrap();
        assert!(
            !trace.progress.is_empty(),
            "instrumented run must emit progress events"
        );
        assert_eq!(trace.logs.len(), 3);
        let summary = check(&path, &trace).unwrap();
        assert!(summary.contains("3 logs"), "{summary}");
        assert!(summary.contains("progress"), "{summary}");
        // A seq gap means lines were lost outside the accounted ring window.
        let mut gapped = trace.clone();
        gapped.logs[2].seq += 5;
        let err = check(&path, &gapped).unwrap_err().to_string();
        assert!(err.contains("contiguous"), "{err}");
        // Progress snapshots with broken fractions are rejected.
        let mut bad_frac = trace.clone();
        bad_frac.progress[0].moved_frac = 1.5;
        let err = check(&path, &bad_frac).unwrap_err().to_string();
        assert!(err.contains("outside [0,1]"), "{err}");
        // Rendering: the inventory pointer and the --logs section.
        let rendered = render_single(&path, &trace, 10);
        assert!(rendered.contains("flight recorder:"), "{rendered}");
        let logs = render_logs(&trace);
        assert!(logs.contains("progress snapshots"), "{logs}");
        assert!(logs.contains("line 3"), "{logs}");
        // Traces without recorder events render neither section header.
        let bare = Trace::default();
        assert_eq!(render_recorder_summary(&bare), "");
        assert!(render_logs(&bare).contains("no flight-recorder events"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn crash_dumps_are_detected_and_validated() {
        let path = format!("{}.json", tmp("crash"));
        let events: Vec<json::Value> = (2..5u64)
            .map(|seq| {
                LogEvent {
                    seq,
                    elapsed_us: seq * 10,
                    level: gala_telemetry::Level::Error,
                    scope: "watchdog".into(),
                    message: "stall".into(),
                    fields: Vec::new(),
                }
                .to_json()
            })
            .collect();
        let doc = json::Value::object()
            .set("schema", SCHEMA_VERSION)
            .set("kind", "crash")
            .set("pid", 123u64)
            .set("reason", "test panic")
            .set(
                "manifest",
                json::Value::object().set("cmdline", "gala detect g.txt"),
            )
            .set("dropped", 2u64)
            .set("events", json::Value::Array(events));
        std::fs::write(&path, doc.render_pretty()).unwrap();
        let verdict = try_crash_dump(&path).expect("crash dump detected");
        verdict.unwrap();
        // A drop counter that disagrees with the first surviving seq fails.
        let bad = doc.set("dropped", 0u64);
        std::fs::write(&path, bad.render_pretty()).unwrap();
        let err = try_crash_dump(&path)
            .expect("still detected")
            .unwrap_err()
            .to_string();
        assert!(err.contains("seq"), "{err}");
        // A JSONL trace is not mistaken for a crash dump.
        let trace_path = write_fixture_trace("notcrash");
        assert!(try_crash_dump(&trace_path).is_none());
        for p in [path, trace_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn golden_output_matches_checked_in_trace() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data");
        let trace_path = format!("{dir}/small_trace.jsonl");
        let golden_path = format!("{dir}/small_trace.analyze.txt");
        let trace = load_trace(&trace_path).unwrap();
        let rendered = render_single("tests/data/small_trace.jsonl", &trace, 10);
        let golden = std::fs::read_to_string(&golden_path).unwrap();
        assert_eq!(
            rendered, golden,
            "analyze output drifted from the golden file; if the change is \
             intentional, regenerate tests/data/small_trace.analyze.txt"
        );
    }
}
