//! Command execution: graph IO, algorithm dispatch, and reporting.

use crate::args::{
    Algorithm, Backend, Command, DetectArgs, Format, GenerateArgs, MgContract, Pruning, Reorder,
    Store, USAGE,
};
use gala_core::backend::BackendKind;
use gala_core::label_prop::{label_propagation, LabelPropConfig};
use gala_core::leiden::{leiden_instrumented, LeidenConfig};
use gala_core::louvain::LouvainConfig;
use gala_core::metrics::summarize;
use gala_core::modularity::modularity_with_resolution;
use gala_core::multi_gpu::{
    run_full_instrumented as multi_gpu_full_instrumented,
    run_phase1_instrumented as multi_gpu_phase1_instrumented, ContractMode, MultiGpuConfig,
};
use gala_core::pruning::PruningKind;
use gala_core::sequential::{sequential_louvain_instrumented, SequentialConfig};
use gala_core::validation::{coverage, mean_conductance};
use gala_gpu::memory::CostModel;
use gala_gpu::profile::{Profiler, SpanRecord};
use gala_graph::generators::ba::barabasi_albert;
use gala_graph::generators::gnp::gnp;
use gala_graph::generators::lfr::LfrParams;
use gala_graph::generators::rmat::{rmat, RmatParams};
use gala_graph::generators::sbm::PowerLawSbm;
use gala_graph::generators::ws::watts_strogatz;
use gala_graph::reorder::{self, Ordering};
use gala_graph::stats::GraphStats;
use gala_graph::{io, metis, Graph, GraphStore, Partition};
use gala_telemetry::{recorder, JsonlSink, MetricRow, NullSink, Report, TraceSink};
use std::fs::File;
use std::io::{BufWriter, IsTerminal, Write};
use std::time::{Duration, Instant};

/// Boxed error type for command failures.
pub type Error = Box<dyn std::error::Error>;

/// Executes a parsed command.
pub fn execute(cmd: Command) -> Result<(), Error> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Stats { input, format } => stats(&input, format),
        Command::Convert { input, output } => convert(&input, &output),
        Command::Compare { a, b, graph } => compare(&a, &b, graph.as_deref()),
        Command::Generate(args) => generate(args),
        Command::Detect(args) => detect(args),
        Command::Analyze(args) => crate::analyze::run(&args),
        Command::Profile(args) => crate::profile::run(&args),
        Command::Trend(args) => crate::trend::run(&args),
    }
}

/// Reads a `vertex community` assignment file (as written by `detect
/// --output`). Missing vertices default to singleton labels.
pub fn load_assignment(path: &str, num_vertices: usize) -> Result<Partition, Error> {
    let text = std::fs::read_to_string(path)?;
    let mut n = num_vertices;
    let mut pairs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let bad = || format!("{path} line {}: expected `vertex community`", lineno + 1);
        let v: usize = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let c: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        n = n.max(v + 1);
        pairs.push((v, c));
    }
    let mut assignment: Vec<u32> = (0..n as u32).collect();
    // Avoid label collisions with explicit assignments: shift defaults up.
    let max_label = pairs.iter().map(|&(_, c)| c).max().unwrap_or(0);
    for x in assignment.iter_mut() {
        *x += max_label + 1;
    }
    for (v, c) in pairs {
        assignment[v] = c;
    }
    Ok(Partition::from_assignment(assignment))
}

fn compare(a: &str, b: &str, graph: Option<&str>) -> Result<(), Error> {
    use gala_core::metrics::nmi;
    use gala_core::validation::adjusted_rand_index;
    let pa = load_assignment(a, 0)?;
    let pb = load_assignment(b, pa.len())?;
    let pa = if pa.len() < pb.len() {
        load_assignment(a, pb.len())?
    } else {
        pa
    };
    println!("vertices: {}", pa.len());
    println!(
        "communities: {} vs {}",
        pa.num_communities(),
        pb.num_communities()
    );
    println!("NMI: {:.5}", nmi(&pa, &pb));
    println!("ARI: {:.5}", adjusted_rand_index(&pa, &pb));
    if let Some(gpath) = graph {
        let g = load(gpath, None)?;
        if g.num_vertices() != pa.len() {
            return Err(format!(
                "graph has {} vertices, assignments cover {}",
                g.num_vertices(),
                pa.len()
            )
            .into());
        }
        println!(
            "Q: {:.5} vs {:.5}",
            modularity_with_resolution(&g, &pa, 1.0),
            modularity_with_resolution(&g, &pb, 1.0)
        );
    }
    Ok(())
}

/// Loads a graph with the given (or inferred) format.
pub fn load(path: &str, format: Option<Format>) -> Result<Graph, Error> {
    let format = format.unwrap_or_else(|| Format::from_path(path));
    Ok(match format {
        Format::EdgeList => io::load_edge_list(path)?,
        Format::Metis => metis::load_metis(path)?,
        Format::Binary => io::load_binary(path)?,
    })
}

/// Saves a graph with the format inferred from the extension.
pub fn save(graph: &Graph, path: &str) -> Result<(), Error> {
    match Format::from_path(path) {
        Format::EdgeList => io::save_edge_list(graph, path)?,
        Format::Metis => metis::save_metis(graph, path)?,
        Format::Binary => io::save_binary(graph, path)?,
    }
    Ok(())
}

fn stats(input: &str, format: Option<Format>) -> Result<(), Error> {
    let g = load(input, format)?;
    let s = GraphStats::compute(&g);
    println!("vertices:        {}", s.num_vertices);
    println!("edges:           {}", s.num_edges);
    println!("total weight:    {}", s.total_weight);
    println!(
        "degree min/mean/max: {} / {:.2} / {}",
        s.min_degree, s.mean_degree, s.max_degree
    );
    println!("degree < 32:     {:.1}%", s.small_degree_fraction * 100.0);
    let (_, components) = gala_graph::traversal::connected_components(&g);
    println!("components:      {components}");
    Ok(())
}

fn convert(input: &str, output: &str) -> Result<(), Error> {
    let g = load(input, None)?;
    save(&g, output)?;
    println!(
        "converted {input} -> {output} ({} vertices, {} edges)",
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}

fn generate(args: GenerateArgs) -> Result<(), Error> {
    let GenerateArgs {
        kind,
        out,
        n,
        seed,
        mixing,
    } = args;
    let graph = match kind.as_str() {
        "sbm" => {
            PowerLawSbm {
                num_vertices: n,
                min_community: 15,
                max_community: (n / 20).max(30) as u32,
                size_exponent: 2.0,
                internal_degree: 10.0,
                mixing,
            }
            .generate(seed)
            .graph
        }
        "lfr" => {
            LfrParams {
                num_vertices: n,
                min_degree: 5,
                max_degree: 50,
                degree_exponent: 2.5,
                min_community: 20,
                max_community: (n / 20).max(40) as u32,
                community_exponent: 1.5,
                mixing,
            }
            .generate(seed)
            .graph
        }
        "rmat" => {
            let scale = (n.max(2) as f64).log2().ceil() as u32;
            rmat(
                &RmatParams {
                    scale,
                    edge_factor: 12.0,
                    ..RmatParams::default()
                },
                seed,
            )
        }
        "ba" => barabasi_albert(n, 8, seed),
        "ws" => watts_strogatz(n, 8, mixing.clamp(0.0, 1.0), seed),
        "gnp" => gnp(n, 16.0 / n.max(1) as f64, seed),
        other => return Err(format!("unknown generator `{other}`").into()),
    };
    save(&graph, &out)?;
    println!(
        "generated {kind} graph: {} vertices, {} edges -> {out}",
        graph.num_vertices(),
        graph.num_edges()
    );
    Ok(())
}

/// Flattens a profiling span tree into report rows, one per span, labelled
/// by slash-joined path (`span/round/superstep/decide/hash`). Empty trees
/// (profiling off, or a non-GALA algorithm) add nothing.
fn push_span_rows(report: &mut Report, span: &SpanRecord, prefix: &str) {
    let cost = CostModel::default();
    for child in &span.children {
        let path = format!("{prefix}/{}", child.name);
        let total = child.total_tally();
        report.push(
            MetricRow::new(path.as_str())
                .metric("invocations", child.invocations as f64)
                .metric("self_cycles", child.self_cycles(&cost))
                .metric("total_cycles", child.total_cycles(&cost))
                .metric("divergence", total.divergence())
                .metric("coalescing_efficiency", total.coalescing_efficiency()),
        );
        push_span_rows(report, child, &path);
    }
}

fn detect(args: DetectArgs) -> Result<(), Error> {
    let format = args
        .format
        .unwrap_or_else(|| Format::from_path(&args.input));
    let store = if args.store == Store::Mapped {
        if format != Format::Binary {
            return Err("--store mapped requires a binary graph (--format bin)".into());
        }
        GraphStore::Mapped(io::load_binary_mapped(&args.input)?)
    } else {
        GraphStore::Owned(load(&args.input, Some(format))?)
    };
    let store_kind = store.kind();
    // --reorder: renumber for locality before detection. The ordering is
    // kept so `--output` can map assignments back to the original ids.
    let (graph, ordering, spans): (Graph, Option<Ordering>, Option<(f64, f64)>) = match args.reorder
    {
        Reorder::None => (store.into_graph(), None, None),
        kind => {
            let base = store.graph();
            let before = reorder::mean_edge_span(base);
            let ord = match kind {
                Reorder::Degree => reorder::degree_order(base),
                Reorder::Bfs => reorder::bfs_order(base),
                Reorder::None => unreachable!(),
            };
            let reordered = reorder::apply(base, &ord);
            let after = reorder::mean_edge_span(&reordered);
            (reordered, Some(ord), Some((before, after)))
        }
    };
    // --trace: JSONL superstep events (only the GALA drivers emit them;
    // the other algorithms leave the file empty).
    let mut jsonl = match &args.trace {
        Some(path) => Some(JsonlSink::new(BufWriter::new(File::create(path)?))),
        None => None,
    };
    let mut null = NullSink;
    let sink: &mut dyn TraceSink = match jsonl.as_mut() {
        Some(s) => s,
        None => &mut null,
    };
    // --report: profile the run so the report carries the span tree. The
    // GALA drivers take the profiler; other algorithms leave it empty.
    let mut prof = if args.report.is_some() {
        Profiler::new()
    } else {
        Profiler::disabled()
    };
    let backend = match args.backend {
        Backend::Sim => BackendKind::Sim,
        Backend::Native => BackendKind::Native,
    };
    // --progress: arm the flight recorder for live observation. The ring
    // filter honours GALA_LOG; the status line renders on stderr (rewritten
    // in place on a TTY, one plain line per snapshot otherwise) so stdout
    // stays clean for reports. A watchdog flags supersteps that go silent,
    // and a panic hook drains the ring into a provenance-stamped crash dump.
    let progress_tty = if args.progress {
        recorder::init_from_env();
        let tty = std::io::stderr().is_terminal();
        recorder::set_progress_callback(Box::new(move |snap| {
            let line = snap.render_line();
            if tty {
                eprint!("\r\x1b[2K{line}");
                let _ = std::io::stderr().flush();
            } else {
                eprintln!("{line}");
            }
        }));
        recorder::arm_watchdog(Duration::from_secs(30));
        recorder::install_panic_hook(
            recorder::Manifest::with_cmdline()
                .entry("input", &args.input)
                .entry("algorithm", &format!("{:?}", args.algorithm))
                .entry("backend", &format!("{backend}"))
                .entry("devices", &format!("{}", args.devices))
                .entry("resolution", &format!("{}", args.resolution))
                .entry("schema", &format!("{}", gala_telemetry::SCHEMA_VERSION)),
        );
        Some(tty)
    } else {
        None
    };
    let start = Instant::now();
    let (name, partition): (&str, Partition) = match args.algorithm {
        Algorithm::Gala => {
            let pruning = match args.pruning {
                Pruning::Mg => PruningKind::Gain,
                Pruning::Sm => PruningKind::Strict,
                Pruning::Rm => PruningKind::Relaxed,
                Pruning::Pm => PruningKind::probabilistic_default(),
                Pruning::MgRm => PruningKind::GainRelaxed,
                Pruning::None => PruningKind::None,
            };
            if args.mg_contract == MgContract::Partitioned {
                // The partitioned contraction only exists in the full
                // hierarchy driver, so `--mg-contract partitioned` runs
                // all rounds even at one device.
                let r = multi_gpu_full_instrumented(
                    &graph,
                    MultiGpuConfig {
                        num_devices: args.devices,
                        pruning,
                        backend,
                        contract: ContractMode::Partitioned,
                        ..MultiGpuConfig::default()
                    },
                    sink,
                    &mut prof,
                );
                ("GALA (multi-device, full)", r.partition)
            } else if args.devices > 1 {
                let r = multi_gpu_phase1_instrumented(
                    &graph,
                    MultiGpuConfig {
                        num_devices: args.devices,
                        pruning,
                        backend,
                        ..MultiGpuConfig::default()
                    },
                    sink,
                    &mut prof,
                );
                ("GALA (multi-device, phase 1)", r.partition)
            } else {
                let r = gala_core::louvain::Louvain::new(LouvainConfig {
                    pruning,
                    resolution: args.resolution,
                    backend,
                    ..LouvainConfig::default()
                })
                .run_instrumented(&graph, sink, &mut prof);
                ("GALA", r.partition)
            }
        }
        Algorithm::Leiden => {
            let r = leiden_instrumented(
                &graph,
                LeidenConfig {
                    resolution: args.resolution,
                    backend,
                    ..LeidenConfig::default()
                },
                sink,
                &mut prof,
            );
            ("Leiden", r.partition)
        }
        Algorithm::Lpa => {
            let r = label_propagation(&graph, LabelPropConfig::default());
            ("label propagation", r.partition)
        }
        Algorithm::Sequential => {
            let r = sequential_louvain_instrumented(
                &graph,
                SequentialConfig::default(),
                sink,
                &mut prof,
            );
            ("sequential Louvain", r.partition)
        }
    };
    let elapsed = start.elapsed();
    if let Some(tty) = progress_tty {
        recorder::disarm_watchdog();
        recorder::clear_progress_callback();
        if tty {
            // Terminate the in-place status line.
            eprintln!();
        }
        // Append the recorder's buffered log lines to the trace (a no-op
        // without --trace): readers accept `log` events after `run_end`.
        recorder::drain_into_sink(sink);
    }
    if let Some(s) = jsonl {
        // Flush the trace before anything else can fail.
        s.into_inner();
    }
    let q = modularity_with_resolution(&graph, &partition, args.resolution);
    let s = summarize(&partition);
    if let Some(path) = &args.report {
        let mut report = Report::new("run", "detect")
            .meta("algorithm", name)
            .meta("backend", format!("{backend}"))
            .meta("input", args.input.as_str())
            .meta("resolution", format!("{}", args.resolution))
            .meta("devices", format!("{}", args.devices))
            .meta(
                "contract",
                match args.mg_contract {
                    MgContract::Host => "host",
                    MgContract::Partitioned => "partitioned",
                },
            )
            .meta("store", store_kind)
            .meta(
                "reorder",
                match args.reorder {
                    Reorder::None => "none",
                    Reorder::Degree => "degree",
                    Reorder::Bfs => "bfs",
                },
            );
        report.push(
            MetricRow::new("summary")
                .metric("vertices", graph.num_vertices() as f64)
                .metric("edges", graph.num_edges() as f64)
                .metric("modularity", q)
                .metric("communities", s.num_communities as f64)
                .metric("coverage", coverage(&graph, &partition))
                .metric("mean_conductance", mean_conductance(&graph, &partition))
                .metric("seconds", elapsed.as_secs_f64()),
        );
        if let Some((before, after)) = spans {
            report.push(
                MetricRow::new("reorder")
                    .metric("mean_edge_span_before", before)
                    .metric("mean_edge_span_after", after),
            );
        }
        push_span_rows(&mut report, &prof.finish(), "span");
        report.write_to(path)?;
    }
    if !args.quiet {
        println!(
            "{name}: {} vertices, {} edges, {:.2}s",
            graph.num_vertices(),
            graph.num_edges(),
            elapsed.as_secs_f64()
        );
        println!(
            "Q(gamma={}) = {:.5}, {} communities (sizes {}..{}, mean {:.1})",
            args.resolution, q, s.num_communities, s.min_size, s.max_size, s.mean_size
        );
        println!(
            "coverage = {:.4}, mean conductance = {:.4}",
            coverage(&graph, &partition),
            mean_conductance(&graph, &partition)
        );
        if let Some((before, after)) = spans {
            println!("mean edge span: {before:.1} -> {after:.1} (reordered)");
        }
    }
    if let Some(path) = args.output {
        let mut w = BufWriter::new(File::create(&path)?);
        // Assignments are written against the ORIGINAL vertex ids: when a
        // reorder ran, each original vertex reads its label through its
        // renumbered id.
        for v in 0..partition.len() {
            let c = match &ordering {
                Some(ord) => partition.community_of(ord.new_id[v]),
                None => partition.community_of(v as u32),
            };
            writeln!(w, "{v} {c}")?;
        }
        if !args.quiet {
            println!("assignments written to {path}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Command;
    use gala_graph::generators::fixtures;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("gala_cli_{name}_{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn load_save_roundtrip_every_format() {
        let g = fixtures::two_cliques(4);
        for ext in ["txt", "metis", "bin"] {
            let path = format!("{}.{ext}", tmp("roundtrip"));
            save(&g, &path).unwrap();
            let g2 = load(&path, None).unwrap();
            assert_eq!(g, g2, "{ext}");
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn detect_pipeline_end_to_end() {
        let g = fixtures::two_cliques(5);
        let graph_path = format!("{}.txt", tmp("detect"));
        let out_path = format!("{}.out", tmp("detect"));
        save(&g, &graph_path).unwrap();
        let cmd = Command::parse(
            &[
                "detect",
                graph_path.as_str(),
                "--output",
                out_path.as_str(),
                "--quiet",
            ]
            .map(String::from),
        )
        .unwrap();
        execute(cmd).unwrap();
        let text = std::fs::read_to_string(&out_path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 10);
        // Two communities: vertices 0-4 share one label, 5-9 the other.
        let label_of = |v: usize| lines[v].split_whitespace().nth(1).unwrap().to_string();
        assert_eq!(label_of(0), label_of(4));
        assert_eq!(label_of(5), label_of(9));
        assert_ne!(label_of(0), label_of(5));
        let _ = std::fs::remove_file(graph_path);
        let _ = std::fs::remove_file(out_path);
    }

    #[test]
    fn detect_writes_trace_and_report() {
        let g = fixtures::ring_of_cliques(5, 4);
        let graph_path = format!("{}.txt", tmp("tr"));
        let trace_path = format!("{}.jsonl", tmp("tr"));
        let report_path = format!("{}.json", tmp("tr"));
        save(&g, &graph_path).unwrap();
        let cmd = Command::parse(
            &[
                "detect",
                graph_path.as_str(),
                "--trace",
                trace_path.as_str(),
                "--report",
                report_path.as_str(),
                "--quiet",
            ]
            .map(String::from),
        )
        .unwrap();
        execute(cmd).unwrap();

        // Trace: valid JSONL, bracketed by run_start/run_end.
        let text = std::fs::read_to_string(&trace_path).unwrap();
        let events: Vec<_> = text
            .lines()
            .map(|l| gala_telemetry::json::parse(l).unwrap())
            .collect();
        assert!(events.len() >= 3);
        assert_eq!(events[0].get("event").unwrap().as_str(), Some("run_start"));
        assert_eq!(
            events.last().unwrap().get("event").unwrap().as_str(),
            Some("run_end")
        );
        assert!(events.iter().any(|e| {
            e.get("event").unwrap().as_str() == Some("superstep")
                && e.get("moved").unwrap().as_u64().unwrap() > 0
        }));

        // Report: parses back through the schema and carries the result.
        let report = Report::read_from(&report_path).unwrap();
        assert_eq!(report.kind, "run");
        assert_eq!(report.meta_value("algorithm"), Some("GALA"));
        let row = report.row("summary").unwrap();
        assert_eq!(row.get("vertices"), Some(20.0));
        assert_eq!(row.get("communities"), Some(5.0));
        assert!(row.get("modularity").unwrap() > 0.5);

        // --report also captures the profiling span tree as span/* rows.
        let decide = report
            .rows
            .iter()
            .find(|r| r.label.ends_with("/decide"))
            .expect("report must carry span rows");
        assert!(decide.get("total_cycles").unwrap() > 0.0);
        assert!(decide.get("invocations").unwrap() >= 1.0);

        // And the trace now carries span events alongside supersteps.
        assert!(events
            .iter()
            .any(|e| e.get("event").unwrap().as_str() == Some("span")));
        for p in [graph_path, trace_path, report_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn multi_device_detect_traces_sync_events() {
        let g = fixtures::ring_of_cliques(4, 4);
        let graph_path = format!("{}.txt", tmp("mdtr"));
        let trace_path = format!("{}.jsonl", tmp("mdtr"));
        save(&g, &graph_path).unwrap();
        let cmd = Command::parse(
            &[
                "detect",
                graph_path.as_str(),
                "--devices",
                "2",
                "--trace",
                trace_path.as_str(),
                "--quiet",
            ]
            .map(String::from),
        )
        .unwrap();
        execute(cmd).unwrap();
        let text = std::fs::read_to_string(&trace_path).unwrap();
        let syncs = text
            .lines()
            .map(|l| gala_telemetry::json::parse(l).unwrap())
            .filter(|e| e.get("event").unwrap().as_str() == Some("sync"))
            .count();
        assert!(syncs > 0, "multi-device trace must contain sync events");
        for p in [graph_path, trace_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn partitioned_detect_runs_the_full_hierarchy_and_traces_exchanges() {
        let g = fixtures::ring_of_cliques(6, 5);
        let graph_path = format!("{}.txt", tmp("mgfull"));
        let trace_path = format!("{}.jsonl", tmp("mgfull"));
        let report_path = format!("{}.json", tmp("mgfull"));
        let out_host = format!("{}.host.txt", tmp("mgfull"));
        let out_part = format!("{}.part.txt", tmp("mgfull"));
        save(&g, &graph_path).unwrap();
        // Host reference assignment at one device.
        execute(
            Command::parse(
                &[
                    "detect",
                    graph_path.as_str(),
                    "--output",
                    out_host.as_str(),
                    "--quiet",
                ]
                .map(String::from),
            )
            .unwrap(),
        )
        .unwrap();
        execute(
            Command::parse(
                &[
                    "detect",
                    graph_path.as_str(),
                    "--devices",
                    "4",
                    "--mg-contract",
                    "partitioned",
                    "--trace",
                    trace_path.as_str(),
                    "--report",
                    report_path.as_str(),
                    "--output",
                    out_part.as_str(),
                    "--quiet",
                ]
                .map(String::from),
            )
            .unwrap(),
        )
        .unwrap();
        // The partitioned full hierarchy lands on the same assignment as
        // the single-device host run (one clique per community).
        assert_eq!(
            std::fs::read_to_string(&out_host).unwrap(),
            std::fs::read_to_string(&out_part).unwrap()
        );
        // The trace carries exchange syncs and survives `analyze --check`.
        let text = std::fs::read_to_string(&trace_path).unwrap();
        assert!(
            text.lines()
                .map(|l| gala_telemetry::json::parse(l).unwrap())
                .any(|e| e.get("event").unwrap().as_str() == Some("sync")
                    && e.get("mode")
                        .unwrap()
                        .as_str()
                        .unwrap()
                        .starts_with("exchange-")),
            "partitioned trace must contain exchange sync events"
        );
        execute(
            Command::parse(&["analyze", trace_path.as_str(), "--check"].map(String::from)).unwrap(),
        )
        .unwrap();
        let report = Report::read_from(&report_path).unwrap();
        assert_eq!(
            report.meta_value("algorithm"),
            Some("GALA (multi-device, full)")
        );
        assert_eq!(report.meta_value("contract"), Some("partitioned"));
        for p in [graph_path, trace_path, report_path, out_host, out_part] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn progress_detect_runs_and_its_trace_survives_check() {
        // Non-TTY path (test harness stderr is a pipe): plain status lines,
        // deterministic trace content, and the trailing ring flush must not
        // break `analyze --check`.
        let g = fixtures::ring_of_cliques(5, 4);
        let graph_path = format!("{}.txt", tmp("prog"));
        let trace_path = format!("{}.jsonl", tmp("prog"));
        save(&g, &graph_path).unwrap();
        execute(
            Command::parse(
                &[
                    "detect",
                    graph_path.as_str(),
                    "--progress",
                    "--trace",
                    trace_path.as_str(),
                    "--quiet",
                ]
                .map(String::from),
            )
            .unwrap(),
        )
        .unwrap();
        let text = std::fs::read_to_string(&trace_path).unwrap();
        assert!(
            text.lines()
                .map(|l| gala_telemetry::json::parse(l).unwrap())
                .any(|e| e.get("event").unwrap().as_str() == Some("progress")),
            "trace must carry deterministic progress events"
        );
        execute(
            Command::parse(&["analyze", trace_path.as_str(), "--check"].map(String::from)).unwrap(),
        )
        .unwrap();
        for p in [graph_path, trace_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn generate_and_stats() {
        let path = format!("{}.bin", tmp("gen"));
        execute(
            Command::parse(
                &["generate", "sbm", "--out", path.as_str(), "--n", "500"].map(String::from),
            )
            .unwrap(),
        )
        .unwrap();
        let g = load(&path, None).unwrap();
        assert_eq!(g.num_vertices(), 500);
        execute(Command::parse(&["stats", path.as_str()].map(String::from)).unwrap()).unwrap();
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn every_algorithm_runs() {
        let g = fixtures::two_cliques(4);
        let graph_path = format!("{}.txt", tmp("algos"));
        save(&g, &graph_path).unwrap();
        for algo in ["gala", "leiden", "lpa", "sequential"] {
            let cmd = Command::parse(
                &[
                    "detect",
                    graph_path.as_str(),
                    "--algorithm",
                    algo,
                    "--quiet",
                ]
                .map(String::from),
            )
            .unwrap();
            execute(cmd).unwrap_or_else(|e| panic!("{algo}: {e}"));
        }
        let _ = std::fs::remove_file(graph_path);
    }

    #[test]
    fn native_backend_detect_matches_sim() {
        let g = fixtures::ring_of_cliques(6, 4);
        let graph_path = format!("{}.txt", tmp("nb"));
        save(&g, &graph_path).unwrap();
        let mut outs = Vec::new();
        for backend in ["sim", "native"] {
            let out_path = format!("{}_{backend}.out", tmp("nb"));
            let report_path = format!("{}_{backend}.json", tmp("nb"));
            let cmd = Command::parse(
                &[
                    "detect",
                    graph_path.as_str(),
                    "--backend",
                    backend,
                    "--output",
                    out_path.as_str(),
                    "--report",
                    report_path.as_str(),
                    "--quiet",
                ]
                .map(String::from),
            )
            .unwrap();
            execute(cmd).unwrap();
            let report = Report::read_from(&report_path).unwrap();
            assert_eq!(report.meta_value("backend"), Some(backend));
            outs.push(std::fs::read_to_string(&out_path).unwrap());
            for p in [out_path, report_path] {
                let _ = std::fs::remove_file(p);
            }
        }
        assert_eq!(outs[0], outs[1], "backends must agree on assignments");
        let _ = std::fs::remove_file(graph_path);
    }

    #[test]
    fn compare_pipeline() {
        let g = fixtures::two_cliques(4);
        let gp = format!("{}.txt", tmp("cmpg"));
        let a1 = format!("{}.a", tmp("cmp"));
        let a2 = format!("{}.b", tmp("cmp"));
        save(&g, &gp).unwrap();
        std::fs::write(&a1, "0 0\n1 0\n2 0\n3 0\n4 1\n5 1\n6 1\n7 1\n").unwrap();
        std::fs::write(&a2, "0 5\n1 5\n2 5\n3 5\n4 9\n5 9\n6 9\n7 9\n").unwrap();
        let cmd = Command::parse(
            &["compare", a1.as_str(), a2.as_str(), "--graph", gp.as_str()].map(String::from),
        )
        .unwrap();
        execute(cmd).unwrap();
        // Identical up to relabel: NMI must be exactly 1 (checked via the
        // library call the command uses).
        let pa = load_assignment(&a1, 0).unwrap();
        let pb = load_assignment(&a2, 0).unwrap();
        assert_eq!(gala_core::metrics::nmi(&pa, &pb), 1.0);
        for p in [gp, a1, a2] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn load_assignment_defaults_missing_vertices_to_singletons() {
        let path = format!("{}.a", tmp("sparse"));
        std::fs::write(&path, "0 7\n2 7\n").unwrap();
        let p = load_assignment(&path, 4).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.community_of(0), 7);
        assert_eq!(p.community_of(2), 7);
        // 1 and 3 are singletons distinct from 7 and from each other.
        assert_ne!(p.community_of(1), 7);
        assert_ne!(p.community_of(3), 7);
        assert_ne!(p.community_of(1), p.community_of(3));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn reordered_detect_matches_unordered_up_to_labels() {
        let g = fixtures::ring_of_cliques(6, 4);
        let graph_path = format!("{}.txt", tmp("reord"));
        save(&g, &graph_path).unwrap();
        let base_out = format!("{}_none.out", tmp("reord"));
        execute(
            Command::parse(
                &[
                    "detect",
                    graph_path.as_str(),
                    "--output",
                    base_out.as_str(),
                    "--quiet",
                ]
                .map(String::from),
            )
            .unwrap(),
        )
        .unwrap();
        let base = load_assignment(&base_out, 0).unwrap();
        for kind in ["degree", "bfs"] {
            let out = format!("{}_{kind}.out", tmp("reord"));
            let report_path = format!("{}_{kind}.json", tmp("reord"));
            execute(
                Command::parse(
                    &[
                        "detect",
                        graph_path.as_str(),
                        "--reorder",
                        kind,
                        "--output",
                        out.as_str(),
                        "--report",
                        report_path.as_str(),
                        "--quiet",
                    ]
                    .map(String::from),
                )
                .unwrap(),
            )
            .unwrap();
            // Output is keyed by ORIGINAL ids: same partition up to labels.
            let p = load_assignment(&out, 0).unwrap();
            assert_eq!(
                gala_core::metrics::nmi(&base, &p),
                1.0,
                "--reorder {kind} must not change the partition"
            );
            let report = Report::read_from(&report_path).unwrap();
            assert_eq!(report.meta_value("reorder"), Some(kind));
            let row = report.row("reorder").expect("span metrics row");
            assert!(row.get("mean_edge_span_before").unwrap() > 0.0);
            assert!(row.get("mean_edge_span_after").unwrap() > 0.0);
            for p in [out, report_path] {
                let _ = std::fs::remove_file(p);
            }
        }
        for p in [graph_path, base_out] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn mapped_store_detect_matches_owned_on_both_backends() {
        let g = fixtures::ring_of_cliques(5, 4);
        let graph_path = format!("{}.bin", tmp("mapped"));
        save(&g, &graph_path).unwrap();
        for backend in ["sim", "native"] {
            let mut outs = Vec::new();
            for store in ["owned", "mapped"] {
                let out = format!("{}_{backend}_{store}.out", tmp("mapped"));
                let report_path = format!("{}_{backend}_{store}.json", tmp("mapped"));
                execute(
                    Command::parse(
                        &[
                            "detect",
                            graph_path.as_str(),
                            "--backend",
                            backend,
                            "--store",
                            store,
                            "--output",
                            out.as_str(),
                            "--report",
                            report_path.as_str(),
                            "--quiet",
                        ]
                        .map(String::from),
                    )
                    .unwrap(),
                )
                .unwrap();
                let report = Report::read_from(&report_path).unwrap();
                assert_eq!(report.meta_value("store"), Some(store));
                let q = report.row("summary").unwrap().get("modularity").unwrap();
                outs.push((std::fs::read_to_string(&out).unwrap(), q));
                for p in [out, report_path] {
                    let _ = std::fs::remove_file(p);
                }
            }
            assert_eq!(
                outs[0].0, outs[1].0,
                "{backend}: mapped and owned stores must agree on assignments"
            );
            assert_eq!(
                outs[0].1, outs[1].1,
                "{backend}: mapped and owned stores must agree on modularity"
            );
        }
        let _ = std::fs::remove_file(graph_path);
    }

    #[test]
    fn mapped_store_requires_binary_input() {
        let g = fixtures::two_cliques(3);
        let graph_path = format!("{}.txt", tmp("mappedtxt"));
        save(&g, &graph_path).unwrap();
        let cmd = Command::parse(
            &[
                "detect",
                graph_path.as_str(),
                "--store",
                "mapped",
                "--quiet",
            ]
            .map(String::from),
        )
        .unwrap();
        assert!(execute(cmd).is_err());
        let _ = std::fs::remove_file(graph_path);
    }

    #[test]
    fn missing_file_is_an_error() {
        let cmd = Command::parse(&["stats", "/no/such/file.txt"].map(String::from)).unwrap();
        assert!(execute(cmd).is_err());
    }

    #[test]
    fn unknown_generator_is_an_error() {
        let cmd = Command::parse(&["generate", "fractal", "--out", "/tmp/x.txt"].map(String::from))
            .unwrap();
        assert!(execute(cmd).is_err());
    }
}
