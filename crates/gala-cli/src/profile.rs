//! `gala profile`: sim↔native cost attribution from paired traces.
//!
//! Loads the schema-4 `profile` events of two trace files — one produced
//! by the simulated backend (component cycle charges) and one by the
//! native backend (wall nanoseconds) — joins them span-by-span through
//! [`Attribution`], and renders a roofline-style table: per kernel, the
//! predicted-cycle component stack, arithmetic/memory intensity, and the
//! calibration residual against the fitted clock. Kernels more than 2σ
//! from the fleet mean are flagged.
//!
//! Events are dispatched by their `unit` field, not by which file they
//! came from: a Leiden sim trace legitimately mixes host-`ns` phase-1
//! events with sim-`cycles` contract events, and only the cycle-charged
//! side feeds the sim accumulator. `--write-calibration` persists the fit
//! as a [`Calibration`]; `--gate` compares a fresh profile against a
//! stored one and exits non-zero on drift, closing the loop the ROADMAP's
//! cost-model calibration item asks for.
//!
//! Every renderer returns a `String` so tests can pin output; [`run`]
//! only adds printing and file IO.

use crate::args::ProfileArgs;
use crate::commands::Error;
use gala_gpu::memory::COMPONENT_NAMES;
use gala_telemetry::{
    json, profile_span_from_json, Attribution, AttributionReport, Calibration, MetricRow,
    ProfileSpan, Report, MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};

/// The `profile` events of one trace file, each reduced to the fields the
/// attribution join needs.
#[derive(Debug)]
struct ProfileEvents {
    /// Total events in the file (all kinds).
    events: usize,
    /// `(unit, spans)` per `profile` event, in file order.
    profiles: Vec<(String, Vec<ProfileSpan>)>,
}

/// Streams one trace file, keeping only its `profile` events. Schema
/// violations report the offending event index and schema, like
/// `gala analyze`.
fn load_profiles(path: &str) -> Result<ProfileEvents, Error> {
    use std::io::BufRead;
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let reader = std::io::BufReader::new(file);
    let mut out = ProfileEvents {
        events: 0,
        profiles: Vec::new(),
    };
    for (idx, raw) in reader.lines().enumerate() {
        let line = idx + 1;
        let raw = raw.map_err(|e| format!("{path} line {line}: {e}"))?;
        if raw.trim().is_empty() {
            continue;
        }
        let v = json::parse(&raw).map_err(|e| format!("{path} line {line}: {e}"))?;
        let schema = v
            .get("schema")
            .and_then(json::Value::as_u64)
            .ok_or_else(|| format!("{path} line {line}: missing `schema`"))?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema) {
            return Err(format!(
                "{path} line {line}: event {} has schema {schema} (this build reads \
                 {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})",
                out.events
            )
            .into());
        }
        out.events += 1;
        if v.get("event").and_then(json::Value::as_str) != Some("profile") {
            continue;
        }
        let unit = v
            .get("unit")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("{path} line {line}: profile event missing `unit`"))?
            .to_string();
        if unit != "cycles" && unit != "ns" {
            return Err(format!("{path} line {line}: unknown profile unit `{unit}`").into());
        }
        let spans = v
            .get("spans")
            .and_then(json::Value::as_array)
            .ok_or_else(|| format!("{path} line {line}: profile event missing `spans`"))?
            .iter()
            .map(profile_span_from_json)
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| format!("{path} line {line}: bad profile span"))?;
        out.profiles.push((unit, spans));
    }
    if out.events == 0 {
        return Err(format!("{path}: empty trace").into());
    }
    if out.profiles.is_empty() {
        return Err(format!(
            "{path}: no profile events (trace written by a pre-schema-4 build? \
             re-run `gala detect --trace` with this build)"
        )
        .into());
    }
    Ok(out)
}

/// Feeds one file's profile events into the join, dispatching on `unit`.
fn feed(attr: &mut Attribution, events: &ProfileEvents) {
    for (unit, spans) in &events.profiles {
        if unit == "cycles" {
            attr.add_sim(spans);
        } else {
            attr.add_native(spans);
        }
    }
}

/// Kernel rows in display order: heaviest predicted cycles first, path as
/// the deterministic tiebreak.
fn display_rows(report: &AttributionReport) -> Vec<&gala_telemetry::KernelResidual> {
    let mut rows: Vec<_> = report.kernels.iter().collect();
    rows.sort_by(|a, b| {
        b.sim_cycles
            .partial_cmp(&a.sim_cycles)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.path.cmp(&b.path))
    });
    rows
}

/// The compact `name 61.0%` stack of a kernel's non-zero components.
fn component_stack(row: &gala_telemetry::KernelResidual) -> String {
    let total = row.sim_cycles.max(f64::MIN_POSITIVE);
    COMPONENT_NAMES
        .into_iter()
        .filter_map(|name| {
            let charge = row.components.get(name).unwrap_or(0.0);
            (charge > 0.0).then(|| format!("{name} {:.1}%", 100.0 * charge / total))
        })
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Full report text: header, roofline table, component stacks, suggested
/// calibrated scales.
fn render_report(
    sim_path: &str,
    native_path: &str,
    sim: &ProfileEvents,
    native: &ProfileEvents,
    report: &AttributionReport,
    top: usize,
) -> String {
    let flagged = report.kernels.iter().filter(|k| k.flagged).count();
    let mut out = format!(
        "profile: {sim_path} ({} profile events) vs {native_path} ({} profile events)\n",
        sim.profiles.len(),
        native.profiles.len()
    );
    out.push_str(&format!(
        "fitted clock {:.4} cycles/ns | mean residual {:.4} | sigma {:.4} | \
         {} kernels ({flagged} flagged)\n\n",
        report.clock_cycles_per_ns,
        report.mean_residual,
        report.stddev_residual,
        report.kernels.len(),
    ));
    let rows = display_rows(report);
    let shown = rows.len().min(top.max(1));
    let width = rows[..shown]
        .iter()
        .map(|r| r.path.len())
        .max()
        .unwrap_or(6)
        .max(6);
    out.push_str(&format!(
        "  {:<width$} {:>6} {:>14} {:>14} {:>7} {:>6} {:>6}\n",
        "kernel", "inv", "sim cyc", "native ns", "resid", "ai%", "mem%"
    ));
    for r in &rows[..shown] {
        out.push_str(&format!(
            "  {:<width$} {:>6} {:>14.0} {:>14.0} {:>7.3} {:>6.1} {:>6.1}{}\n",
            r.path,
            r.invocations,
            r.sim_cycles,
            r.native_ns,
            r.residual,
            100.0 * r.arithmetic_intensity(),
            100.0 * r.memory_intensity(),
            if r.flagged { "  FLAGGED" } else { "" },
        ));
    }
    out.push_str("\ncomponent stacks (% of predicted cycles)\n");
    for r in &rows[..shown] {
        out.push_str(&format!("  {:<width$} {}\n", r.path, component_stack(r)));
    }
    let [compute, shared_mem, global_mem, atomics, scan_sort] = report.suggested_scales();
    out.push_str(&format!(
        "\nsuggested CostModel::calibrated scales: compute {compute:.4} | \
         shared_mem {shared_mem:.4} | global_mem {global_mem:.4} | \
         atomics {atomics:.4} | scan_sort {scan_sort:.4}\n"
    ));
    out
}

/// The machine-readable report (`--report`): one `kernel/<path>` row per
/// joined kernel plus a `calibration` summary row, in the bench-report
/// schema so `gala trend` can ingest residual series.
fn build_report(args: &ProfileArgs, report: &AttributionReport) -> Report {
    let mut doc = Report::new("profile", "gala profile")
        .meta("sim_trace", args.sim_trace.as_str())
        .meta("native_trace", args.native_trace.as_str());
    doc.push(
        MetricRow::new("calibration")
            .metric("clock_cycles_per_ns", report.clock_cycles_per_ns)
            .metric("mean_residual", report.mean_residual)
            .metric("stddev_residual", report.stddev_residual)
            .metric("kernels", report.kernels.len() as f64)
            .metric(
                "flagged",
                report.kernels.iter().filter(|k| k.flagged).count() as f64,
            ),
    );
    for k in &report.kernels {
        let mut row = MetricRow::new(format!("kernel/{}", k.path))
            .metric("invocations", k.invocations as f64)
            .metric("sim_cycles", k.sim_cycles)
            .metric("native_ns", k.native_ns)
            .metric("residual", k.residual)
            .metric("arithmetic_intensity", k.arithmetic_intensity())
            .metric("memory_intensity", k.memory_intensity());
        for name in COMPONENT_NAMES {
            row = row.metric(name, k.components.get(name).unwrap_or(0.0));
        }
        doc.push(row);
    }
    doc
}

/// Simulated cycles per exported microsecond (same nominal 1 GHz device
/// as the `analyze` exporter — slice ratios are what matter).
const CYCLES_PER_US: f64 = 1000.0;

/// Chrome Trace Event export: one "X" slice per kernel (duration from
/// predicted cycles) and one "C" counter track per cost component, laid
/// out sequentially in display order. Loadable in Perfetto.
fn chrome_trace(report: &AttributionReport) -> json::Value {
    let mut events = vec![
        json::Value::object()
            .set("name", "process_name")
            .set("ph", "M")
            .set("pid", 0u64)
            .set("tid", 0u64)
            .set(
                "args",
                json::Value::object().set("name", "gala profile (sim vs native)"),
            ),
        json::Value::object()
            .set("name", "thread_name")
            .set("ph", "M")
            .set("pid", 0u64)
            .set("tid", 0u64)
            .set("args", json::Value::object().set("name", "kernels")),
    ];
    let mut cursor = 0.0_f64;
    for r in display_rows(report) {
        let dur = r.sim_cycles / CYCLES_PER_US;
        events.push(
            json::Value::object()
                .set("name", r.path.as_str())
                .set("ph", "X")
                .set("ts", cursor)
                .set("dur", dur)
                .set("pid", 0u64)
                .set("tid", 0u64)
                .set(
                    "args",
                    json::Value::object()
                        .set("residual", r.residual)
                        .set("native_ns", r.native_ns),
                ),
        );
        for name in COMPONENT_NAMES {
            events.push(
                json::Value::object()
                    .set("name", format!("cost/{name}").as_str())
                    .set("ph", "C")
                    .set("ts", cursor)
                    .set("pid", 0u64)
                    .set("tid", 0u64)
                    .set(
                        "args",
                        json::Value::object().set("value", r.components.get(name).unwrap_or(0.0)),
                    ),
            );
        }
        cursor += dur;
    }
    json::Value::object().set("traceEvents", json::Value::Array(events))
}

/// Executes the `profile` subcommand. Gate failures surface as a
/// non-zero exit through the caller.
pub fn run(args: &ProfileArgs) -> Result<(), Error> {
    let sim = load_profiles(&args.sim_trace)?;
    let native = load_profiles(&args.native_trace)?;
    let mut attr = Attribution::new();
    feed(&mut attr, &sim);
    feed(&mut attr, &native);
    let report = attr.resolve().ok_or_else(|| {
        format!(
            "{} and {} share no joinable kernel: the native trace's measurement \
             points never land on a cycle-charged sim span (same graph and \
             config on both backends?)",
            args.sim_trace, args.native_trace
        )
    })?;
    print!(
        "{}",
        render_report(
            &args.sim_trace,
            &args.native_trace,
            &sim,
            &native,
            &report,
            args.top
        )
    );
    if let Some(out) = &args.chrome_trace {
        let doc = chrome_trace(&report);
        std::fs::write(out, doc.render()).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote component tracks to {out} (open in https://ui.perfetto.dev)");
    }
    if let Some(out) = &args.report {
        build_report(args, &report).write_to(out)?;
        println!("wrote profile report to {out}");
    }
    if let Some(out) = &args.write_calibration {
        let calibration = Calibration::from_report(&report);
        std::fs::write(out, calibration.to_json().render()).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote calibration to {out}");
    }
    if let Some(path) = &args.gate {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let calibration = Calibration::from_json(&doc).map_err(|e| format!("{path}: {e}"))?;
        let problems = calibration.drift(&report, args.threshold);
        if !problems.is_empty() {
            return Err(format!(
                "calibration gate failed ({} problem(s) at tolerance {:.1}%):\n  {}",
                problems.len(),
                args.threshold * 100.0,
                problems.join("\n  ")
            )
            .into());
        }
        println!(
            "gate ok: {} kernels within {:.1}% of {path}",
            report.kernels.len(),
            args.threshold * 100.0
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gala_core::backend::BackendKind;
    use gala_core::louvain::{Louvain, LouvainConfig};
    use gala_gpu::profile::Profiler;
    use gala_graph::generators::fixtures;
    use gala_telemetry::JsonlSink;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("gala_profile_{name}_{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    /// Runs the Louvain driver on one backend and writes its trace.
    fn write_trace(name: &str, backend: BackendKind) -> String {
        let g = fixtures::ring_of_cliques(6, 5);
        let mut sink = JsonlSink::new(Vec::new());
        let mut prof = Profiler::disabled();
        Louvain::new(LouvainConfig {
            backend,
            ..LouvainConfig::default()
        })
        .run_instrumented(&g, &mut sink, &mut prof);
        let path = format!("{}.jsonl", tmp(name));
        std::fs::write(&path, sink.into_inner()).unwrap();
        path
    }

    fn paired(name: &str) -> (String, String) {
        (
            write_trace(&format!("{name}_sim"), BackendKind::Sim),
            write_trace(&format!("{name}_native"), BackendKind::Native),
        )
    }

    fn base_args(sim: &str, native: &str) -> ProfileArgs {
        ProfileArgs {
            sim_trace: sim.to_string(),
            native_trace: native.to_string(),
            top: 16,
            report: None,
            chrome_trace: None,
            write_calibration: None,
            gate: None,
            threshold: 0.25,
        }
    }

    fn resolve(sim: &str, native: &str) -> (ProfileEvents, ProfileEvents, AttributionReport) {
        let s = load_profiles(sim).unwrap();
        let n = load_profiles(native).unwrap();
        let mut attr = Attribution::new();
        feed(&mut attr, &s);
        feed(&mut attr, &n);
        let report = attr.resolve().unwrap();
        (s, n, report)
    }

    #[test]
    fn joins_real_backend_pair_and_renders() {
        let (sim, native) = paired("join");
        let (s, n, report) = resolve(&sim, &native);
        assert!(s.profiles.iter().all(|(u, _)| u == "cycles"));
        assert!(n.profiles.iter().all(|(u, _)| u == "ns"));
        // The default workload-aware kernel anchors at the decide scope,
        // and phase 2 yields a contract row.
        assert!(
            report.kernels.iter().any(|k| k.path.contains("decide")),
            "{:?}",
            report.kernels.iter().map(|k| &k.path).collect::<Vec<_>>()
        );
        assert!(report.kernels.iter().any(|k| k.path.contains("contract")));
        for k in &report.kernels {
            assert!(k.sim_cycles > 0.0 && k.native_ns > 0.0);
            let intensity = k.arithmetic_intensity() + k.memory_intensity();
            assert!((0.0..=1.0 + 1e-9).contains(&intensity), "{}", k.path);
        }
        let text = render_report(&sim, &native, &s, &n, &report, 16);
        for needle in [
            "fitted clock",
            "kernel",
            "resid",
            "component stacks",
            "suggested CostModel::calibrated scales",
            "decide",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        for p in [sim, native] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn end_to_end_writes_report_calibration_and_chrome_trace() {
        let (sim, native) = paired("e2e");
        let report_path = format!("{}.json", tmp("e2e_report"));
        let cal_path = format!("{}.json", tmp("e2e_cal"));
        let chrome_path = format!("{}.json", tmp("e2e_chrome"));
        let mut args = base_args(&sim, &native);
        args.report = Some(report_path.clone());
        args.write_calibration = Some(cal_path.clone());
        args.chrome_trace = Some(chrome_path.clone());
        run(&args).unwrap();

        let report = Report::read_from(&report_path).unwrap();
        assert_eq!(report.kind, "profile");
        let cal_row = report.row("calibration").unwrap();
        assert!(cal_row.get("clock_cycles_per_ns").unwrap() > 0.0);
        let kernel_rows: Vec<_> = report
            .rows
            .iter()
            .filter(|r| r.label.starts_with("kernel/"))
            .collect();
        assert!(!kernel_rows.is_empty());
        for row in kernel_rows {
            assert!(row.get("residual").unwrap() > 0.0);
            let parts: f64 = COMPONENT_NAMES
                .into_iter()
                .map(|n| row.get(n).unwrap())
                .sum();
            let total = row.get("sim_cycles").unwrap();
            assert!(
                (parts - total).abs() <= total * 1e-9,
                "{}: components {parts} vs cycles {total}",
                row.label
            );
        }

        let doc = json::parse(&std::fs::read_to_string(&chrome_path).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let has = |ph: &str| {
            events
                .iter()
                .any(|e| e.get("ph").and_then(json::Value::as_str) == Some(ph))
        };
        assert!(has("X") && has("C") && has("M"));
        assert!(events.iter().any(|e| {
            e.get("name").and_then(json::Value::as_str) == Some("cost/global_coalesced")
        }));

        // A freshly-written calibration gates its own report cleanly.
        let mut gated = base_args(&sim, &native);
        gated.gate = Some(cal_path.clone());
        run(&gated).unwrap();

        for p in [sim, native, report_path, cal_path, chrome_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn gate_fails_on_drifted_calibration() {
        let (sim, native) = paired("gate");
        let (_, _, report) = resolve(&sim, &native);
        let mut calibration = Calibration::from_report(&report);
        for r in calibration.residuals.values_mut() {
            *r *= 2.0;
        }
        let cal_path = format!("{}.json", tmp("gate_cal"));
        std::fs::write(&cal_path, calibration.to_json().render()).unwrap();
        let mut args = base_args(&sim, &native);
        args.gate = Some(cal_path.clone());
        args.threshold = 0.1;
        let err = run(&args).unwrap_err().to_string();
        assert!(err.contains("calibration gate failed"), "{err}");
        assert!(err.contains("drifted"), "{err}");
        for p in [sim, native, cal_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn rejects_traces_without_profile_events() {
        let path = format!("{}.jsonl", tmp("noprof"));
        std::fs::write(
            &path,
            format!("{{\"event\":\"run_end\",\"schema\":{SCHEMA_VERSION},\"modularity\":0.5,\"rounds\":1,\"total_cycles\":0}}\n"),
        )
        .unwrap();
        let err = load_profiles(&path).unwrap_err().to_string();
        assert!(err.contains("no profile events"), "{err}");
        // Schema violations name the offending event index and schema.
        std::fs::write(
            &path,
            format!(
                "{{\"event\":\"run_end\",\"schema\":{SCHEMA_VERSION}}}\n{{\"event\":\"run_end\",\"schema\":1}}\n"
            ),
        )
        .unwrap();
        let err = load_profiles(&path).unwrap_err().to_string();
        assert!(err.contains("event 1") && err.contains("schema 1"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn disjoint_traces_are_an_error() {
        let sim = write_trace("disjoint_sim", BackendKind::Sim);
        // A native trace whose spans live under paths the sim never charges.
        let native = format!("{}.jsonl", tmp("disjoint_native"));
        std::fs::write(
            &native,
            format!(
                "{{\"event\":\"profile\",\"schema\":{SCHEMA_VERSION},\"round\":0,\
                 \"superstep\":0,\"phase\":\"phase1\",\"backend\":\"native\",\"unit\":\"ns\",\
                 \"spans\":[{{\"path\":\"elsewhere\",\"invocations\":1,\"total\":100.0,\
                 \"components\":{{\"compute\":100.0,\"shared_mem\":0,\"global_coalesced\":0,\
                 \"global_uncoalesced\":0,\"atomics\":0,\"scan_sort\":0,\"sync\":0}}}}]}}\n"
            ),
        )
        .unwrap();
        let args = base_args(&sim, &native);
        let err = run(&args).unwrap_err().to_string();
        assert!(err.contains("no joinable kernel"), "{err}");
        for p in [sim, native] {
            let _ = std::fs::remove_file(p);
        }
    }
}
