//! Argument grammar for the `gala` CLI (hand-rolled: the workspace carries
//! no arg-parsing dependency).

use std::fmt;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
usage:
  gala detect <graph> [options]     run community detection
      --algorithm gala|leiden|lpa|sequential   (default: gala)
      --backend sim|native                     (default: sim; gala/leiden)
      --pruning mg|sm|rm|pm|mgrm|none          (default: mg; gala only)
      --resolution <gamma>                     (default: 1.0)
      --format edgelist|metis|bin              (default: by extension)
      --output <file>                          write `vertex community` lines
      --devices <p>                            simulated GPUs (default: 1)
      --mg-contract host|partitioned           phase-2 contraction for
                                               multi-device runs (default: host)
      --reorder degree|bfs|none                locality preprocessing: renumber
                                               vertices before detection and
                                               report mean edge span before and
                                               after (default: none; output
                                               assignments keep original ids)
      --store owned|mapped                     binary-graph load path: fully
                                               validated owned arrays, or the
                                               checksummed mapped container
                                               (default: owned; bin format only)
      --trace <file>     write a JSONL superstep trace (gala algorithm)
      --report <file>    write a machine-readable JSON run report
      --quiet                                  suppress the report
      --progress         live status line on stderr (plain lines when
                         stderr is not a TTY); honours GALA_LOG for the
                         flight-recorder level/scope filter
  gala stats <graph> [--format ...]   print graph statistics
  gala generate <kind> --out <file> [--n <v>] [--seed <s>] [--mixing <mu>]
      kinds: sbm | lfr | rmat | ba | ws | gnp
  gala convert <in> <out>             convert between formats (by extension)
  gala compare <assign1> <assign2> [--graph <file>]
                                      NMI/ARI between two assignment files
                                      (plus per-partition Q with --graph)
  gala analyze <trace> [baseline] [options]
                                      inspect a --trace JSONL file:
                                      per-superstep curves plus a top-N span
                                      summary; with a second trace, diff the
                                      watched metrics and exit non-zero on a
                                      regression beyond the threshold
      --top <n>          span-summary rows (default: 10)
      --threshold <t>    relative regression tolerance (default: 0.1)
      --check            validate the trace only (exit non-zero if malformed)
      --logs             print the trace's flight-recorder log and
                         progress events after the report
      --chrome-trace <file>  export a Chrome Trace Event JSON file for
                             Perfetto / chrome://tracing instead of a report
  gala profile <sim.trace> <native.trace> [options]
                                      join a sim and a native trace
                                      span-by-span: per-kernel component
                                      stacks (compute / memory / atomics /
                                      scan-sort / sync), arithmetic and
                                      memory intensity, and calibration
                                      residuals against a fitted clock
      --top <n>          kernel rows to print (default: 16)
      --report <file>    write a machine-readable JSON report
      --chrome-trace <file>  export component counter tracks for Perfetto
      --write-calibration <file>  persist the fitted clock + residuals
      --gate <calibration.json>   exit non-zero when a calibrated kernel's
                                  residual drifts past the threshold
      --threshold <t>    relative residual drift tolerance for --gate
                         (default: 0.25)
  gala trend <report...> [options]    track metrics across bench reports:
                                      append normalized rows to a JSONL
                                      history and render per-metric
                                      trajectories; exit non-zero on a
                                      regression beyond the threshold
      --history <file>   trajectory store (default: results/TREND.jsonl)
      --threshold <t>    relative regression tolerance (default: 0.1)
      --dry-run          render without appending to the history
  gala help                           show this text";

/// Graph file formats the CLI understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Whitespace edge list (`u v [w]`).
    EdgeList,
    /// METIS adjacency format.
    Metis,
    /// The crate's binary container.
    Binary,
}

impl Format {
    /// Parses a `--format` value.
    pub fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "edgelist" | "txt" => Ok(Format::EdgeList),
            "metis" | "graph" => Ok(Format::Metis),
            "bin" | "binary" => Ok(Format::Binary),
            other => Err(ParseError(format!("unknown format `{other}`"))),
        }
    }

    /// Infers a format from a file extension; edge list when unknown.
    pub fn from_path(path: &str) -> Self {
        match path.rsplit('.').next().unwrap_or("") {
            "metis" | "graph" => Format::Metis,
            "bin" => Format::Binary,
            _ => Format::EdgeList,
        }
    }
}

/// Detection algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// The full GALA system (BSP Louvain on the simulated GPU).
    Gala,
    /// Leiden (sequential, connectivity-guaranteed).
    Leiden,
    /// Synchronous label propagation.
    Lpa,
    /// Classic sequential Louvain.
    Sequential,
}

impl Algorithm {
    fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "gala" => Ok(Algorithm::Gala),
            "leiden" => Ok(Algorithm::Leiden),
            "lpa" | "labelprop" => Ok(Algorithm::Lpa),
            "sequential" | "louvain" => Ok(Algorithm::Sequential),
            other => Err(ParseError(format!("unknown algorithm `{other}`"))),
        }
    }
}

/// Execution backends (`--backend`): the simulated GPU with cycle
/// accounting, or the native host pool with wall-clock timing. Both
/// produce identical assignments — CI's backend-equivalence job gates it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// Simulated-GPU execution (the default).
    #[default]
    Sim,
    /// Native execution on the host work-stealing pool.
    Native,
}

impl Backend {
    fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "sim" => Ok(Backend::Sim),
            "native" => Ok(Backend::Native),
            other => Err(ParseError(format!("unknown backend `{other}`"))),
        }
    }
}

/// Phase-2 contraction strategy for multi-device runs (`--mg-contract`).
/// Mirrors `gala-core`'s `ContractMode`; both strategies are bit-identical,
/// the partitioned one adds per-device compute and exchange modelling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MgContract {
    /// Single host contraction between rounds (the default).
    #[default]
    Host,
    /// Partitioned per-device contraction with simulated collectives.
    Partitioned,
}

impl MgContract {
    fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "host" => Ok(MgContract::Host),
            "partitioned" => Ok(MgContract::Partitioned),
            other => Err(ParseError(format!(
                "unknown contract mode `{other}` (expected host|partitioned)"
            ))),
        }
    }
}

/// Locality preprocessing (`--reorder`): renumber vertices before
/// detection. Assignments written with `--output` are mapped back to the
/// original ids. The graph itself is unchanged up to relabeling, but
/// parallel Louvain breaks ties by vertex id, so community boundaries
/// (and Q, slightly) can differ from the unreordered run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Reorder {
    /// Keep the input ordering (the default).
    #[default]
    None,
    /// Degree-descending (hubs first).
    Degree,
    /// BFS from the highest-degree vertex per component.
    Bfs,
}

impl Reorder {
    fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "none" => Ok(Reorder::None),
            "degree" => Ok(Reorder::Degree),
            "bfs" => Ok(Reorder::Bfs),
            other => Err(ParseError(format!(
                "unknown reorder `{other}` (expected degree|bfs|none)"
            ))),
        }
    }
}

/// Binary-graph load path (`--store`): fully validated owned arrays, or
/// the checksummed v2 container through the mapped loader. Both yield
/// identical graphs; mapped skips the structural audit on load.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Store {
    /// Owned, fully validated load (the default).
    #[default]
    Owned,
    /// Mapped v2-container load (bin format only).
    Mapped,
}

impl Store {
    fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "owned" => Ok(Store::Owned),
            "mapped" => Ok(Store::Mapped),
            other => Err(ParseError(format!(
                "unknown store `{other}` (expected owned|mapped)"
            ))),
        }
    }
}

/// Pruning strategy names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pruning {
    /// Modularity-gain (MG).
    Mg,
    /// Strict movement (SM).
    Sm,
    /// Relaxed movement (RM).
    Rm,
    /// Probabilistic movement (PM, α = 0.25).
    Pm,
    /// MG + RM combined.
    MgRm,
    /// No pruning.
    None,
}

impl Pruning {
    fn parse(s: &str) -> Result<Self, ParseError> {
        match s {
            "mg" => Ok(Pruning::Mg),
            "sm" => Ok(Pruning::Sm),
            "rm" => Ok(Pruning::Rm),
            "pm" => Ok(Pruning::Pm),
            "mgrm" | "mg+rm" => Ok(Pruning::MgRm),
            "none" => Ok(Pruning::None),
            other => Err(ParseError(format!("unknown pruning strategy `{other}`"))),
        }
    }
}

/// The `detect` subcommand's options.
#[derive(Clone, Debug, PartialEq)]
pub struct DetectArgs {
    /// Input graph path.
    pub input: String,
    /// Input format (inferred from the extension when absent).
    pub format: Option<Format>,
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Execution backend (GALA and Leiden).
    pub backend: Backend,
    /// Pruning strategy (GALA only).
    pub pruning: Pruning,
    /// Resolution γ.
    pub resolution: f64,
    /// Assignment output path.
    pub output: Option<String>,
    /// Simulated device count.
    pub devices: usize,
    /// Phase-2 contraction strategy (multi-device runs).
    pub mg_contract: MgContract,
    /// Locality preprocessing before detection.
    pub reorder: Reorder,
    /// Binary-graph load path.
    pub store: Store,
    /// JSONL trace output path (per-superstep events; GALA algorithm).
    pub trace: Option<String>,
    /// Machine-readable JSON report output path.
    pub report: Option<String>,
    /// Suppress the human-readable report.
    pub quiet: bool,
    /// Render a live flight-recorder status line on stderr.
    pub progress: bool,
}

/// The `generate` subcommand's options.
#[derive(Clone, Debug, PartialEq)]
pub struct GenerateArgs {
    /// Generator kind (`sbm`, `lfr`, `rmat`, `ba`, `ws`, `gnp`).
    pub kind: String,
    /// Output path.
    pub out: String,
    /// Vertex count.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
    /// Mixing parameter (sbm / lfr).
    pub mixing: f64,
}

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Run community detection.
    Detect(DetectArgs),
    /// Print graph statistics.
    Stats {
        /// Input path.
        input: String,
        /// Explicit format override.
        format: Option<Format>,
    },
    /// Generate a synthetic graph.
    Generate(GenerateArgs),
    /// Convert between formats.
    Convert {
        /// Input path.
        input: String,
        /// Output path.
        output: String,
    },
    /// Compare two community-assignment files.
    Compare {
        /// First assignment file (`vertex community` lines).
        a: String,
        /// Second assignment file.
        b: String,
        /// Optional graph for modularity scoring.
        graph: Option<String>,
    },
    /// Inspect (and optionally diff) trace JSONL files.
    Analyze(AnalyzeArgs),
    /// Join a sim and a native trace into per-kernel cost attribution.
    Profile(ProfileArgs),
    /// Track watched metrics across bench-report generations.
    Trend(TrendArgs),
    /// Print usage.
    Help,
}

/// The `analyze` subcommand's options.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalyzeArgs {
    /// Trace to analyze.
    pub trace: String,
    /// Optional baseline trace to diff against.
    pub baseline: Option<String>,
    /// Rows in the span summary.
    pub top: usize,
    /// Relative regression tolerance for diff mode.
    pub threshold: f64,
    /// Validate the trace only.
    pub check: bool,
    /// Write a Chrome Trace Event Format export here instead of a report.
    pub chrome_trace: Option<String>,
    /// Print the trace's flight-recorder log/progress events.
    pub logs: bool,
}

/// The `profile` subcommand's options.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileArgs {
    /// Trace with simulated-cycle `profile` events (unit `cycles`).
    pub sim_trace: String,
    /// Trace with wall-clock `profile` events (unit `ns`).
    pub native_trace: String,
    /// Kernel rows to print in the roofline table.
    pub top: usize,
    /// Machine-readable JSON report output path.
    pub report: Option<String>,
    /// Chrome Trace Event Format export path (component counter tracks).
    pub chrome_trace: Option<String>,
    /// Persist the fitted calibration here.
    pub write_calibration: Option<String>,
    /// Gate against a previously-written calibration file.
    pub gate: Option<String>,
    /// Relative residual drift tolerance for `--gate`.
    pub threshold: f64,
}

/// The `trend` subcommand's options.
#[derive(Clone, Debug, PartialEq)]
pub struct TrendArgs {
    /// Bench-report JSON files to ingest, in generation order.
    pub reports: Vec<String>,
    /// JSONL trajectory store, appended to unless `--dry-run`.
    pub history: String,
    /// Relative regression tolerance between the last two generations.
    pub threshold: f64,
    /// Render without appending to the history file.
    pub dry_run: bool,
}

/// A parse failure with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, ParseError> {
    *i += 1;
    args.get(*i)
        .map(|s| s.as_str())
        .ok_or_else(|| ParseError(format!("{flag} needs a value")))
}

impl Command {
    /// Parses an argv (without the program name).
    pub fn parse(args: &[String]) -> Result<Self, ParseError> {
        let Some(sub) = args.first() else {
            return Err(ParseError("missing subcommand".into()));
        };
        match sub.as_str() {
            "help" | "--help" | "-h" => Ok(Command::Help),
            "detect" => Self::parse_detect(&args[1..]),
            "stats" => Self::parse_stats(&args[1..]),
            "generate" => Self::parse_generate(&args[1..]),
            "convert" => {
                let [input, output] = &args[1..] else {
                    return Err(ParseError("convert needs <in> <out>".into()));
                };
                Ok(Command::Convert {
                    input: input.clone(),
                    output: output.clone(),
                })
            }
            "compare" => Self::parse_compare(&args[1..]),
            "analyze" => Self::parse_analyze(&args[1..]),
            "profile" => Self::parse_profile(&args[1..]),
            "trend" => Self::parse_trend(&args[1..]),
            other => Err(ParseError(format!("unknown subcommand `{other}`"))),
        }
    }

    fn parse_detect(args: &[String]) -> Result<Self, ParseError> {
        let mut out = DetectArgs {
            input: String::new(),
            format: None,
            algorithm: Algorithm::Gala,
            backend: Backend::Sim,
            pruning: Pruning::Mg,
            resolution: 1.0,
            output: None,
            devices: 1,
            mg_contract: MgContract::Host,
            reorder: Reorder::None,
            store: Store::Owned,
            trace: None,
            report: None,
            quiet: false,
            progress: false,
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--format" => out.format = Some(Format::parse(value(args, &mut i, "--format")?)?),
                "--algorithm" => {
                    out.algorithm = Algorithm::parse(value(args, &mut i, "--algorithm")?)?
                }
                "--backend" => out.backend = Backend::parse(value(args, &mut i, "--backend")?)?,
                "--pruning" => out.pruning = Pruning::parse(value(args, &mut i, "--pruning")?)?,
                "--resolution" => {
                    let v = value(args, &mut i, "--resolution")?;
                    out.resolution = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad resolution `{v}`")))?;
                    if out.resolution.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                        return Err(ParseError("resolution must be > 0".into()));
                    }
                }
                "--output" => out.output = Some(value(args, &mut i, "--output")?.to_string()),
                "--devices" => {
                    let v = value(args, &mut i, "--devices")?;
                    out.devices = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad device count `{v}`")))?;
                    if out.devices == 0 {
                        return Err(ParseError("need at least one device".into()));
                    }
                }
                "--mg-contract" => {
                    out.mg_contract = MgContract::parse(value(args, &mut i, "--mg-contract")?)?
                }
                "--reorder" => out.reorder = Reorder::parse(value(args, &mut i, "--reorder")?)?,
                "--store" => out.store = Store::parse(value(args, &mut i, "--store")?)?,
                "--trace" => out.trace = Some(value(args, &mut i, "--trace")?.to_string()),
                "--report" => out.report = Some(value(args, &mut i, "--report")?.to_string()),
                "--quiet" => out.quiet = true,
                "--progress" => out.progress = true,
                flag if flag.starts_with("--") => {
                    return Err(ParseError(format!("unknown flag `{flag}`")))
                }
                positional => {
                    if !out.input.is_empty() {
                        return Err(ParseError(format!("unexpected argument `{positional}`")));
                    }
                    out.input = positional.to_string();
                }
            }
            i += 1;
        }
        if out.input.is_empty() {
            return Err(ParseError("detect needs an input graph".into()));
        }
        Ok(Command::Detect(out))
    }

    fn parse_analyze(args: &[String]) -> Result<Self, ParseError> {
        let mut positional = Vec::new();
        let mut top = 10usize;
        let mut threshold = 0.1f64;
        let mut check = false;
        let mut chrome_trace = None;
        let mut logs = false;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--chrome-trace" => {
                    chrome_trace = Some(value(args, &mut i, "--chrome-trace")?.to_string())
                }
                "--top" => {
                    let v = value(args, &mut i, "--top")?;
                    top = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad --top `{v}`")))?;
                }
                "--threshold" => {
                    let v = value(args, &mut i, "--threshold")?;
                    threshold = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad --threshold `{v}`")))?;
                    if threshold.is_nan() || threshold < 0.0 {
                        return Err(ParseError("threshold must be >= 0".into()));
                    }
                }
                "--check" => check = true,
                "--logs" => logs = true,
                flag if flag.starts_with("--") => {
                    return Err(ParseError(format!("unknown flag `{flag}`")))
                }
                p => positional.push(p.to_string()),
            }
            i += 1;
        }
        let (trace, baseline) = match positional.as_slice() {
            [t] => (t.clone(), None),
            [t, b] => (t.clone(), Some(b.clone())),
            [] => return Err(ParseError("analyze needs a trace file".into())),
            _ => return Err(ParseError("analyze takes at most two traces".into())),
        };
        Ok(Command::Analyze(AnalyzeArgs {
            trace,
            baseline,
            top,
            threshold,
            check,
            chrome_trace,
            logs,
        }))
    }

    fn parse_profile(args: &[String]) -> Result<Self, ParseError> {
        let mut positional = Vec::new();
        let mut top = 16usize;
        let mut report = None;
        let mut chrome_trace = None;
        let mut write_calibration = None;
        let mut gate = None;
        let mut threshold = 0.25f64;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--top" => {
                    let v = value(args, &mut i, "--top")?;
                    top = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad --top `{v}`")))?;
                }
                "--report" => report = Some(value(args, &mut i, "--report")?.to_string()),
                "--chrome-trace" => {
                    chrome_trace = Some(value(args, &mut i, "--chrome-trace")?.to_string())
                }
                "--write-calibration" => {
                    write_calibration =
                        Some(value(args, &mut i, "--write-calibration")?.to_string())
                }
                "--gate" => gate = Some(value(args, &mut i, "--gate")?.to_string()),
                "--threshold" => {
                    let v = value(args, &mut i, "--threshold")?;
                    threshold = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad --threshold `{v}`")))?;
                    if threshold.is_nan() || threshold < 0.0 {
                        return Err(ParseError("threshold must be >= 0".into()));
                    }
                }
                flag if flag.starts_with("--") => {
                    return Err(ParseError(format!("unknown flag `{flag}`")))
                }
                p => positional.push(p.to_string()),
            }
            i += 1;
        }
        let [sim_trace, native_trace] = positional.as_slice() else {
            return Err(ParseError(
                "profile needs exactly two traces: <sim.trace> <native.trace>".into(),
            ));
        };
        Ok(Command::Profile(ProfileArgs {
            sim_trace: sim_trace.clone(),
            native_trace: native_trace.clone(),
            top,
            report,
            chrome_trace,
            write_calibration,
            gate,
            threshold,
        }))
    }

    fn parse_trend(args: &[String]) -> Result<Self, ParseError> {
        let mut out = TrendArgs {
            reports: Vec::new(),
            history: "results/TREND.jsonl".to_string(),
            threshold: 0.1,
            dry_run: false,
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--history" => out.history = value(args, &mut i, "--history")?.to_string(),
                "--threshold" => {
                    let v = value(args, &mut i, "--threshold")?;
                    out.threshold = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad --threshold `{v}`")))?;
                    if out.threshold.is_nan() || out.threshold < 0.0 {
                        return Err(ParseError("threshold must be >= 0".into()));
                    }
                }
                "--dry-run" => out.dry_run = true,
                flag if flag.starts_with("--") => {
                    return Err(ParseError(format!("unknown flag `{flag}`")))
                }
                p => out.reports.push(p.to_string()),
            }
            i += 1;
        }
        if out.reports.is_empty() {
            return Err(ParseError("trend needs at least one report file".into()));
        }
        Ok(Command::Trend(out))
    }

    fn parse_compare(args: &[String]) -> Result<Self, ParseError> {
        let mut positional = Vec::new();
        let mut graph = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--graph" => graph = Some(value(args, &mut i, "--graph")?.to_string()),
                flag if flag.starts_with("--") => {
                    return Err(ParseError(format!("unknown flag `{flag}`")))
                }
                p => positional.push(p.to_string()),
            }
            i += 1;
        }
        let [a, b] = positional.as_slice() else {
            return Err(ParseError(
                "compare needs exactly two assignment files".into(),
            ));
        };
        Ok(Command::Compare {
            a: a.clone(),
            b: b.clone(),
            graph,
        })
    }

    fn parse_stats(args: &[String]) -> Result<Self, ParseError> {
        let mut input = String::new();
        let mut format = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--format" => format = Some(Format::parse(value(args, &mut i, "--format")?)?),
                flag if flag.starts_with("--") => {
                    return Err(ParseError(format!("unknown flag `{flag}`")))
                }
                positional => {
                    if !input.is_empty() {
                        return Err(ParseError(format!("unexpected argument `{positional}`")));
                    }
                    input = positional.to_string();
                }
            }
            i += 1;
        }
        if input.is_empty() {
            return Err(ParseError("stats needs an input graph".into()));
        }
        Ok(Command::Stats { input, format })
    }

    fn parse_generate(args: &[String]) -> Result<Self, ParseError> {
        let mut out = GenerateArgs {
            kind: String::new(),
            out: String::new(),
            n: 10_000,
            seed: 42,
            mixing: 0.2,
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--out" => out.out = value(args, &mut i, "--out")?.to_string(),
                "--n" => {
                    let v = value(args, &mut i, "--n")?;
                    out.n = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad --n `{v}`")))?;
                }
                "--seed" => {
                    let v = value(args, &mut i, "--seed")?;
                    out.seed = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad --seed `{v}`")))?;
                }
                "--mixing" => {
                    let v = value(args, &mut i, "--mixing")?;
                    out.mixing = v
                        .parse()
                        .map_err(|_| ParseError(format!("bad --mixing `{v}`")))?;
                }
                flag if flag.starts_with("--") => {
                    return Err(ParseError(format!("unknown flag `{flag}`")))
                }
                positional => {
                    if !out.kind.is_empty() {
                        return Err(ParseError(format!("unexpected argument `{positional}`")));
                    }
                    out.kind = positional.to_string();
                }
            }
            i += 1;
        }
        if out.kind.is_empty() {
            return Err(ParseError(
                "generate needs a kind (sbm|lfr|rmat|ba|ws|gnp)".into(),
            ));
        }
        if out.out.is_empty() {
            return Err(ParseError("generate needs --out <file>".into()));
        }
        Ok(Command::Generate(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_minimal_detect() {
        let cmd = Command::parse(&argv("detect graph.txt")).unwrap();
        let Command::Detect(d) = cmd else { panic!() };
        assert_eq!(d.input, "graph.txt");
        assert_eq!(d.algorithm, Algorithm::Gala);
        assert_eq!(d.backend, Backend::Sim);
        assert_eq!(d.pruning, Pruning::Mg);
        assert_eq!(d.resolution, 1.0);
        assert_eq!(d.mg_contract, MgContract::Host);
        assert!(!d.quiet);
        assert!(!d.progress);
    }

    #[test]
    fn parses_full_detect() {
        let cmd = Command::parse(&argv(
            "detect g.metis --algorithm leiden --backend native --resolution 2.5 --output out.txt --devices 4 --mg-contract partitioned --quiet --progress",
        ))
        .unwrap();
        let Command::Detect(d) = cmd else { panic!() };
        assert_eq!(d.algorithm, Algorithm::Leiden);
        assert_eq!(d.backend, Backend::Native);
        assert_eq!(d.resolution, 2.5);
        assert_eq!(d.output.as_deref(), Some("out.txt"));
        assert_eq!(d.devices, 4);
        assert_eq!(d.mg_contract, MgContract::Partitioned);
        assert!(d.quiet);
        assert!(d.progress);
        assert_eq!(d.trace, None);
        assert_eq!(d.report, None);
    }

    #[test]
    fn parses_trace_and_report_flags() {
        let cmd =
            Command::parse(&argv("detect g.txt --trace run.jsonl --report report.json")).unwrap();
        let Command::Detect(d) = cmd else { panic!() };
        assert_eq!(d.trace.as_deref(), Some("run.jsonl"));
        assert_eq!(d.report.as_deref(), Some("report.json"));
        assert!(Command::parse(&argv("detect g.txt --trace")).is_err());
        assert!(Command::parse(&argv("detect g.txt --report")).is_err());
    }

    #[test]
    fn parses_reorder_and_store_flags() {
        let cmd = Command::parse(&argv("detect g.bin --reorder degree --store mapped")).unwrap();
        let Command::Detect(d) = cmd else { panic!() };
        assert_eq!(d.reorder, Reorder::Degree);
        assert_eq!(d.store, Store::Mapped);

        let cmd = Command::parse(&argv("detect g.txt --reorder bfs")).unwrap();
        let Command::Detect(d) = cmd else { panic!() };
        assert_eq!(d.reorder, Reorder::Bfs);
        assert_eq!(d.store, Store::Owned);

        let cmd = Command::parse(&argv("detect g.txt --reorder none")).unwrap();
        let Command::Detect(d) = cmd else { panic!() };
        assert_eq!(d.reorder, Reorder::None);

        assert!(Command::parse(&argv("detect g.txt --reorder hilbert")).is_err());
        assert!(Command::parse(&argv("detect g.txt --store virtual")).is_err());
        assert!(Command::parse(&argv("detect g.txt --reorder")).is_err());
        assert!(Command::parse(&argv("detect g.txt --store")).is_err());
    }

    #[test]
    fn rejects_bad_values() {
        assert!(Command::parse(&argv("detect g.txt --resolution zero")).is_err());
        assert!(Command::parse(&argv("detect g.txt --resolution -1")).is_err());
        assert!(Command::parse(&argv("detect g.txt --devices 0")).is_err());
        assert!(Command::parse(&argv("detect g.txt --pruning magic")).is_err());
        assert!(Command::parse(&argv("detect g.txt --backend warp")).is_err());
        assert!(Command::parse(&argv("detect g.txt --mg-contract fused")).is_err());
        assert!(Command::parse(&argv("detect g.txt --mg-contract")).is_err());
        assert!(Command::parse(&argv("detect")).is_err());
        assert!(Command::parse(&argv("detect a.txt b.txt")).is_err());
        assert!(Command::parse(&argv("detect g.txt --nonsense")).is_err());
        assert!(Command::parse(&argv("frobnicate")).is_err());
        assert!(Command::parse(&[]).is_err());
    }

    #[test]
    fn parses_generate() {
        let cmd = Command::parse(&argv("generate lfr --out g.txt --n 5000 --mixing 0.3")).unwrap();
        let Command::Generate(g) = cmd else { panic!() };
        assert_eq!(g.kind, "lfr");
        assert_eq!(g.n, 5000);
        assert_eq!(g.mixing, 0.3);
        assert!(Command::parse(&argv("generate lfr")).is_err()); // no --out
        assert!(Command::parse(&argv("generate --out x")).is_err()); // no kind
    }

    #[test]
    fn parses_convert_and_stats_and_help() {
        assert_eq!(
            Command::parse(&argv("convert a.txt b.metis")).unwrap(),
            Command::Convert {
                input: "a.txt".into(),
                output: "b.metis".into()
            }
        );
        assert!(matches!(
            Command::parse(&argv("stats g.bin")).unwrap(),
            Command::Stats { .. }
        ));
        assert_eq!(Command::parse(&argv("help")).unwrap(), Command::Help);
        assert!(Command::parse(&argv("convert onlyone")).is_err());
    }

    #[test]
    fn parses_analyze() {
        let cmd = Command::parse(&argv("analyze run.jsonl")).unwrap();
        let Command::Analyze(a) = cmd else { panic!() };
        assert_eq!(a.trace, "run.jsonl");
        assert_eq!(a.baseline, None);
        assert_eq!(a.top, 10);
        assert_eq!(a.threshold, 0.1);
        assert!(!a.check);

        let cmd =
            Command::parse(&argv("analyze a.jsonl b.jsonl --top 5 --threshold 0.25")).unwrap();
        let Command::Analyze(a) = cmd else { panic!() };
        assert_eq!(a.baseline.as_deref(), Some("b.jsonl"));
        assert_eq!(a.top, 5);
        assert_eq!(a.threshold, 0.25);

        let cmd = Command::parse(&argv("analyze t.jsonl --check")).unwrap();
        let Command::Analyze(a) = cmd else { panic!() };
        assert!(a.check);
        assert_eq!(a.chrome_trace, None);
        assert!(!a.logs);

        let cmd = Command::parse(&argv("analyze t.jsonl --logs")).unwrap();
        let Command::Analyze(a) = cmd else { panic!() };
        assert!(a.logs);
        assert!(!a.check);

        let cmd = Command::parse(&argv("analyze t.jsonl --chrome-trace out.json")).unwrap();
        let Command::Analyze(a) = cmd else { panic!() };
        assert_eq!(a.chrome_trace.as_deref(), Some("out.json"));
        assert!(Command::parse(&argv("analyze t.jsonl --chrome-trace")).is_err());

        assert!(Command::parse(&argv("analyze")).is_err());
        assert!(Command::parse(&argv("analyze a b c")).is_err());
        assert!(Command::parse(&argv("analyze t.jsonl --threshold -1")).is_err());
        assert!(Command::parse(&argv("analyze t.jsonl --top many")).is_err());
        assert!(Command::parse(&argv("analyze t.jsonl --bogus")).is_err());
    }

    #[test]
    fn parses_profile() {
        let cmd = Command::parse(&argv("profile sim.jsonl native.jsonl")).unwrap();
        let Command::Profile(p) = cmd else { panic!() };
        assert_eq!(p.sim_trace, "sim.jsonl");
        assert_eq!(p.native_trace, "native.jsonl");
        assert_eq!(p.top, 16);
        assert_eq!(p.threshold, 0.25);
        assert_eq!(p.report, None);
        assert_eq!(p.gate, None);

        let cmd = Command::parse(&argv(
            "profile s.jsonl n.jsonl --top 4 --report r.json --chrome-trace c.json \
             --write-calibration cal.json --gate old.json --threshold 0.1",
        ))
        .unwrap();
        let Command::Profile(p) = cmd else { panic!() };
        assert_eq!(p.top, 4);
        assert_eq!(p.report.as_deref(), Some("r.json"));
        assert_eq!(p.chrome_trace.as_deref(), Some("c.json"));
        assert_eq!(p.write_calibration.as_deref(), Some("cal.json"));
        assert_eq!(p.gate.as_deref(), Some("old.json"));
        assert_eq!(p.threshold, 0.1);

        assert!(Command::parse(&argv("profile only.jsonl")).is_err());
        assert!(Command::parse(&argv("profile a b c")).is_err());
        assert!(Command::parse(&argv("profile a b --threshold -2")).is_err());
        assert!(Command::parse(&argv("profile a b --gate")).is_err());
        assert!(Command::parse(&argv("profile a b --bogus")).is_err());
    }

    #[test]
    fn parses_trend() {
        let cmd = Command::parse(&argv("trend results/BENCH_host.json")).unwrap();
        let Command::Trend(t) = cmd else { panic!() };
        assert_eq!(t.reports, vec!["results/BENCH_host.json".to_string()]);
        assert_eq!(t.history, "results/TREND.jsonl");
        assert_eq!(t.threshold, 0.1);
        assert!(!t.dry_run);

        let cmd = Command::parse(&argv(
            "trend a.json b.json --history h.jsonl --threshold 0.2 --dry-run",
        ))
        .unwrap();
        let Command::Trend(t) = cmd else { panic!() };
        assert_eq!(t.reports.len(), 2);
        assert_eq!(t.history, "h.jsonl");
        assert_eq!(t.threshold, 0.2);
        assert!(t.dry_run);

        assert!(Command::parse(&argv("trend")).is_err());
        assert!(Command::parse(&argv("trend --history h.jsonl")).is_err());
        assert!(Command::parse(&argv("trend a.json --threshold nope")).is_err());
        assert!(Command::parse(&argv("trend a.json --bogus")).is_err());
    }

    #[test]
    fn format_inference() {
        assert_eq!(Format::from_path("x.metis"), Format::Metis);
        assert_eq!(Format::from_path("x.graph"), Format::Metis);
        assert_eq!(Format::from_path("x.bin"), Format::Binary);
        assert_eq!(Format::from_path("x.txt"), Format::EdgeList);
        assert_eq!(Format::from_path("noext"), Format::EdgeList);
    }
}
