//! Executor-equivalence properties: a pooled [`gala_gpu::grid::launch`]
//! must be observationally identical to the sequential reference
//! [`gala_gpu::grid::launch_seq`] — outputs in input order, tallies equal,
//! span trees equal — at every thread count, and a panicking kernel must
//! propagate without wedging the pool.

use gala_gpu::grid::{launch, launch_into, launch_profiled, launch_seq, launch_seq_profiled};
use gala_gpu::memory::{MemTally, Space};
use gala_gpu::profile::Profiler;
use proptest::prelude::*;
use rayon::with_parallelism;

/// The kernel used by the equivalence properties: touches every tally
/// dimension (loads, atomics, SIMT steps, serialization, coalescing) so a
/// chunking bug in any accumulator shows up as a tally mismatch.
fn kernel(x: &u64, t: &mut MemTally) -> u64 {
    t.load(Space::Global, x % 7);
    t.store(Space::Shared, x % 3);
    if x.is_multiple_of(5) {
        t.atomic(Space::Global, 1);
    }
    t.simt_step((x % 31) as u32);
    if x.is_multiple_of(11) {
        t.simt_serialize(1);
    }
    t.global_request(&[*x, x + 1, x * 17], 4);
    x.wrapping_mul(2_654_435_761) ^ (x >> 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pooled launch == sequential launch at thread counts 1, 2, and 8:
    /// same outputs in the same order, bit-identical tallies. Lengths
    /// straddle the sequential-fallback threshold so both paths are hit.
    #[test]
    fn pooled_launch_matches_seq_at_1_2_8(items in proptest::collection::vec(0u64..1_000_000, 1..4000)) {
        let seq = launch_seq(&items, kernel);
        for threads in [1usize, 2, 8] {
            let par = with_parallelism(threads, || launch(&items, kernel));
            prop_assert_eq!(&par.outputs, &seq.outputs, "outputs diverged at {} threads", threads);
            prop_assert_eq!(par.tally, seq.tally, "tally diverged at {} threads", threads);
        }
    }

    /// The scratch-reuse entry point writes the same outputs into a reused
    /// buffer (no reallocation once capacity suffices).
    #[test]
    fn launch_into_reuses_buffer_and_matches(items in proptest::collection::vec(0u64..1_000_000, 1..3000)) {
        let seq = launch_seq(&items, kernel);
        let mut out: Vec<u64> = Vec::with_capacity(items.len());
        out.push(42); // stale contents must be cleared, not appended to
        let ptr_before = out.as_ptr();
        let tally = with_parallelism(8, || launch_into(&items, kernel, &mut out));
        prop_assert_eq!(out.as_ptr(), ptr_before, "scratch buffer was reallocated");
        prop_assert_eq!(&out, &seq.outputs);
        prop_assert_eq!(tally, seq.tally);
    }

    /// Profiled launches leave identical span trees behind regardless of
    /// executor or thread count.
    #[test]
    fn profiled_span_trees_identical(items in proptest::collection::vec(0u64..1_000_000, 1..3000)) {
        let mut seq_prof = Profiler::new();
        launch_seq_profiled("k", &items, kernel, &mut seq_prof);
        let seq_root = seq_prof.finish();
        for threads in [1usize, 2, 8] {
            let mut par_prof = Profiler::new();
            with_parallelism(threads, || launch_profiled("k", &items, kernel, &mut par_prof));
            prop_assert_eq!(par_prof.finish(), seq_root.clone(), "span tree diverged at {} threads", threads);
        }
    }
}

#[test]
fn kernel_panic_propagates_and_pool_survives() {
    let items: Vec<u64> = (0..5000).collect();
    let result = std::panic::catch_unwind(|| {
        with_parallelism(8, || {
            launch(&items, |x: &u64, t: &mut MemTally| {
                t.load(Space::Global, 1);
                assert!(*x != 3777, "injected kernel fault");
                *x
            })
        })
    });
    assert!(result.is_err(), "kernel panic was swallowed by the pool");

    // The pool must remain fully usable after the fault.
    let par = with_parallelism(8, || launch(&items, kernel));
    let seq = launch_seq(&items, kernel);
    assert_eq!(par.outputs, seq.outputs);
    assert_eq!(par.tally, seq.tally);
}
