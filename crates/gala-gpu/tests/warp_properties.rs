//! Property tests for the warp primitives: each must agree with a scalar
//! specification for arbitrary lane values and active masks.

use gala_gpu::memory::MemTally;
use gala_gpu::warp::{Warp, WARP_SIZE};
use proptest::prelude::*;

fn lanes_u32() -> impl Strategy<Value = [u32; WARP_SIZE]> {
    proptest::collection::vec(0u32..8, WARP_SIZE).prop_map(|v| v.try_into().unwrap())
}

fn lanes_f64() -> impl Strategy<Value = [f64; WARP_SIZE]> {
    proptest::collection::vec(0u32..100, WARP_SIZE).prop_map(|v| {
        let mut out = [0.0; WARP_SIZE];
        for (o, x) in out.iter_mut().zip(v) {
            *o = x as f64;
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// match_any partitions the active lanes into equivalence classes:
    /// masks are reflexive, symmetric, value-consistent, within the active
    /// mask, and identical for equal values.
    #[test]
    fn match_any_is_an_equivalence_partition(values in lanes_u32(), active in any::<u32>()) {
        let mut tally = MemTally::new();
        let mut warp = Warp::new(active, &mut tally);
        let groups = warp.match_any_sync(&values);
        for i in 0..WARP_SIZE {
            if active & (1 << i) == 0 {
                prop_assert_eq!(groups[i], 0);
                continue;
            }
            prop_assert!(groups[i] & (1 << i) != 0, "reflexive at {}", i);
            prop_assert_eq!(groups[i] & !active, 0, "mask escapes active set");
            for j in 0..WARP_SIZE {
                if active & (1 << j) == 0 { continue; }
                let same = values[i] == values[j];
                prop_assert_eq!(groups[i] & (1 << j) != 0, same,
                    "lanes {} {} membership mismatch", i, j);
            }
        }
    }

    /// Grouped reduce-add equals the scalar per-group sums.
    #[test]
    fn grouped_reduce_matches_scalar(comms in lanes_u32(), weights in lanes_f64(),
                                     active in any::<u32>()) {
        let mut tally = MemTally::new();
        let mut warp = Warp::new(active, &mut tally);
        let groups = warp.match_any_sync(&comms);
        let sums = warp.reduce_add_grouped(&groups, &weights);
        for i in 0..WARP_SIZE {
            if active & (1 << i) == 0 { continue; }
            let expected: f64 = (0..WARP_SIZE)
                .filter(|&j| active & (1 << j) != 0 && comms[j] == comms[i])
                .map(|j| weights[j])
                .sum();
            prop_assert!((sums[i] - expected).abs() < 1e-12);
        }
    }

    /// reduce_max equals the scalar max over active lanes.
    #[test]
    fn reduce_max_matches_scalar(values in lanes_f64(), active in any::<u32>()) {
        let mut tally = MemTally::new();
        let mut warp = Warp::new(active, &mut tally);
        let max = warp.reduce_max_sync(&values);
        let expected = (0..WARP_SIZE)
            .filter(|&i| active & (1 << i) != 0)
            .map(|i| values[i])
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(max, expected);
    }

    /// ballot's bit i is set iff lane i is active and its predicate holds.
    #[test]
    fn ballot_matches_scalar(bits in any::<u32>(), active in any::<u32>()) {
        let mut pred = [false; WARP_SIZE];
        for (i, p) in pred.iter_mut().enumerate() {
            *p = bits & (1 << i) != 0;
        }
        let mut tally = MemTally::new();
        let mut warp = Warp::new(active, &mut tally);
        prop_assert_eq!(warp.ballot_sync(&pred), bits & active);
    }

    /// reduce_min over u32 matches the scalar min.
    #[test]
    fn reduce_min_matches_scalar(values in lanes_u32(), active in any::<u32>()) {
        let mut tally = MemTally::new();
        let mut warp = Warp::new(active, &mut tally);
        let min = warp.reduce_min_u32_sync(&values);
        let expected = (0..WARP_SIZE)
            .filter(|&i| active & (1 << i) != 0)
            .map(|i| values[i])
            .min()
            .unwrap_or(u32::MAX);
        prop_assert_eq!(min, expected);
    }
}
