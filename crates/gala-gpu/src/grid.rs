//! Kernel launch: fan a work list out over host threads, one simulated
//! warp/block per item, and reduce the per-item memory tallies.
//!
//! The launcher guarantees determinism of *results* (output `i` is always
//! the kernel applied to item `i`) and of *tallies* (integer counters summed
//! in any order are associative), so a parallel launch and a sequential
//! launch are observationally identical — a property the test suite checks.

use crate::memory::MemTally;
use crate::profile::Profiler;

/// Outcome of a kernel launch: per-item results plus the summed tally.
#[derive(Clone, Debug)]
pub struct LaunchResult<R> {
    /// Kernel output per work item, in input order.
    pub outputs: Vec<R>,
    /// Total memory-access tally across all items.
    pub tally: MemTally,
}

/// Launches `kernel` over `items` on the persistent host pool.
///
/// The kernel receives the item and a [`MemTally`] to count into. Each
/// output is written directly into its final slot in `outputs` (disjoint
/// index ranges per worker — no per-task vectors, no fold/extend
/// recombination), and each worker accumulates into a private chunk tally;
/// the chunk tallies are summed once at the end. Tallies are integer
/// counters, so the sum — and therefore every simulated cycle total — is
/// identical to a sequential launch regardless of chunking.
pub fn launch<I, R, K>(items: &[I], kernel: K) -> LaunchResult<R>
where
    I: Sync,
    R: Send,
    K: Fn(&I, &mut MemTally) -> R + Sync,
{
    let mut outputs = Vec::new();
    let tally = launch_into(items, kernel, &mut outputs);
    LaunchResult { outputs, tally }
}

/// [`launch`] into a caller-owned output buffer, reusing its allocation
/// (cleared first). Returns the summed tally. This is the scratch-reuse
/// entry point drivers use to recycle decision arrays across supersteps.
pub fn launch_into<I, R, K>(items: &[I], kernel: K, outputs: &mut Vec<R>) -> MemTally
where
    I: Sync,
    R: Send,
    K: Fn(&I, &mut MemTally) -> R + Sync,
{
    let chunk_tallies = rayon::par_map_accum_into(items, outputs, MemTally::new, |item, tally| {
        kernel(item, tally)
    });
    let mut tally = MemTally::new();
    for t in chunk_tallies {
        tally += t;
    }
    tally
}

/// Sequential reference launch with identical semantics to [`launch`].
pub fn launch_seq<I, R, K>(items: &[I], mut kernel: K) -> LaunchResult<R>
where
    K: FnMut(&I, &mut MemTally) -> R,
{
    let mut outputs = Vec::with_capacity(items.len());
    let mut tally = MemTally::new();
    for item in items {
        let mut t = MemTally::new();
        outputs.push(kernel(item, &mut t));
        tally += t;
    }
    LaunchResult { outputs, tally }
}

/// [`launch`], recorded as a span named `name` on `prof`: the summed tally
/// lands on the span along with an `"items"` counter.
pub fn launch_profiled<I, R, K>(
    name: &str,
    items: &[I],
    kernel: K,
    prof: &mut Profiler,
) -> LaunchResult<R>
where
    I: Sync,
    R: Send,
    K: Fn(&I, &mut MemTally) -> R + Sync,
{
    let res = launch(items, kernel);
    prof.scope(name, |p| {
        p.record(&res.tally);
        p.count("items", items.len() as u64);
    });
    res
}

/// [`launch_seq`], recorded as a span exactly like [`launch_profiled`] — the
/// two produce identical span trees for the same inputs.
pub fn launch_seq_profiled<I, R, K>(
    name: &str,
    items: &[I],
    kernel: K,
    prof: &mut Profiler,
) -> LaunchResult<R>
where
    K: FnMut(&I, &mut MemTally) -> R,
{
    let res = launch_seq(items, kernel);
    prof.scope(name, |p| {
        p.record(&res.tally);
        p.count("items", items.len() as u64);
    });
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Space;

    #[test]
    fn parallel_matches_sequential() {
        let items: Vec<u64> = (0..500).collect();
        let kernel = |i: &u64, t: &mut MemTally| {
            t.load(Space::Global, *i % 3);
            i * 2
        };
        let par = launch(&items, kernel);
        let seq = launch_seq(&items, kernel);
        assert_eq!(par.outputs, seq.outputs);
        assert_eq!(par.tally, seq.tally);
    }

    #[test]
    fn parallel_matches_sequential_spans() {
        // The determinism guarantee extends to profiling spans: a parallel
        // and a sequential launch of the same kernel leave identical span
        // trees behind.
        let items: Vec<u64> = (0..2000).collect();
        let kernel = |i: &u64, t: &mut MemTally| {
            t.load(Space::Global, *i % 5);
            t.atomic(Space::Shared, 1);
            t.simt_step((*i % 33) as u32);
            if i.is_multiple_of(7) {
                t.simt_serialize(1);
            }
            t.global_request(&[*i, i + 1, i * 40], 4);
            i + 1
        };
        let mut par_prof = Profiler::new();
        let mut seq_prof = Profiler::new();
        let par = launch_profiled("k", &items, kernel, &mut par_prof);
        let seq = launch_seq_profiled("k", &items, kernel, &mut seq_prof);
        assert_eq!(par.outputs, seq.outputs);
        let (par_root, seq_root) = (par_prof.finish(), seq_prof.finish());
        assert_eq!(par_root, seq_root);
        let span = par_root.child("k").unwrap();
        assert_eq!(span.counter("items"), items.len() as u64);
        assert_eq!(span.tally, par.tally);
        // Divergence/coalescing counters reduce deterministically too.
        assert_eq!(span.tally.simt_steps, 2000);
        assert!(span.tally.simt_serialized > 0);
        assert_eq!(span.tally.coalesce_requests, 2000);
        assert!(span.tally.coalesce_transactions >= span.tally.coalesce_ideal);
    }

    #[test]
    fn outputs_preserve_input_order() {
        let items: Vec<u32> = (0..1000).rev().collect();
        let res = launch(&items, |i, _| *i);
        assert_eq!(res.outputs, items);
    }

    #[test]
    fn empty_launch() {
        let items: Vec<u32> = vec![];
        let res = launch(&items, |i, _| *i);
        assert!(res.outputs.is_empty());
        assert_eq!(res.tally, MemTally::new());
    }
}
