//! Multi-device collectives under a ring α–β cost model — the stand-in for
//! NCCL `ncclAllReduce` / `ncclAllGather` over NVLink (paper Section 4.3).
//!
//! The collectives are *functional* (they really combine the per-device
//! buffers, so multi-GPU Louvain produces exact results) and *costed*: each
//! call returns a [`CommEvent`] with the bytes moved and the modelled time,
//! using the standard ring-algorithm formulas:
//!
//! * AllReduce: `2·(p−1)·α + 2·(p−1)/p · bytes / β`
//! * AllGather: `(p−1)·α + (p−1)/p · total_bytes / β`
//! * AllToAll: the cheaper of pairwise exchange
//!   (`(p−1)·α + total_bytes / (p·β)`) and the log-step Bruck schedule
//!   (`⌈log₂ p⌉·α + max(1, ⌈log₂ p⌉/2) · total_bytes / (p·β)`)
//!
//! where `α` is per-step latency and `β` link bandwidth. The dense/sparse
//! synchronisation trade-off the paper exploits falls straight out of these
//! formulas: dense AllReduce cost scales with the full state size, sparse
//! AllGather with the (shrinking) number of moved vertices.

/// Which collective produced a [`CommEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveKind {
    /// Element-wise reduction leaving every device with the combined buffer.
    AllReduce,
    /// Concatenation leaving every device with all devices' items.
    AllGather,
    /// One device's buffer copied to all others.
    Broadcast,
    /// Personalised exchange: every device sends a distinct buffer to every
    /// other device (phase-2 cross-partition row exchange).
    AllToAll,
}

/// Record of one collective: bytes on the wire and modelled time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommEvent {
    /// The collective performed.
    pub kind: CollectiveKind,
    /// Payload bytes (logical buffer size, before ring amplification).
    pub payload_bytes: u64,
    /// Modelled wall time in microseconds.
    pub time_us: f64,
}

/// A group of simulated devices joined by NVLink-class links.
#[derive(Clone, Copy, Debug)]
pub struct DeviceGroup {
    /// Number of devices `p >= 1`.
    pub num_devices: usize,
    /// Per-step latency α in microseconds (NVLink ≈ 5 µs with NCCL setup).
    pub alpha_us: f64,
    /// Link bandwidth β in bytes per microsecond (NVLink 3 ≈ 20 GB/s
    /// effective per direction ⇒ 20 000 B/µs... we default to 25 000).
    pub bytes_per_us: f64,
}

impl DeviceGroup {
    /// A group with NVLink-like defaults.
    pub fn new(num_devices: usize) -> Self {
        assert!(num_devices >= 1, "need at least one device");
        Self {
            num_devices,
            alpha_us: 5.0,
            bytes_per_us: 25_000.0,
        }
    }

    /// Modelled time for a ring AllReduce of `bytes` per device.
    pub fn all_reduce_time_us(&self, bytes: u64) -> f64 {
        let p = self.num_devices as f64;
        if self.num_devices == 1 {
            return 0.0;
        }
        2.0 * (p - 1.0) * self.alpha_us + 2.0 * (p - 1.0) / p * bytes as f64 / self.bytes_per_us
    }

    /// Modelled time for a ring AllGather totalling `total_bytes` across
    /// devices.
    pub fn all_gather_time_us(&self, total_bytes: u64) -> f64 {
        let p = self.num_devices as f64;
        if self.num_devices == 1 {
            return 0.0;
        }
        (p - 1.0) * self.alpha_us + (p - 1.0) / p * total_bytes as f64 / self.bytes_per_us
    }

    /// Element-wise sum-AllReduce over equal-length `f64` buffers, one per
    /// device. Every buffer ends up holding the sum.
    pub fn all_reduce_sum(&self, buffers: &mut [Vec<f64>]) -> CommEvent {
        assert_eq!(buffers.len(), self.num_devices, "one buffer per device");
        let len = buffers.first().map_or(0, |b| b.len());
        assert!(
            buffers.iter().all(|b| b.len() == len),
            "AllReduce buffers must have equal length"
        );
        let mut sum = vec![0.0f64; len];
        for b in buffers.iter() {
            for (s, x) in sum.iter_mut().zip(b) {
                *s += x;
            }
        }
        for b in buffers.iter_mut() {
            b.copy_from_slice(&sum);
        }
        let payload = (len * std::mem::size_of::<f64>()) as u64;
        CommEvent {
            kind: CollectiveKind::AllReduce,
            payload_bytes: payload,
            time_us: self.all_reduce_time_us(payload),
        }
    }

    /// Element-wise *max*-AllReduce over equal-length `u32` buffers (used to
    /// propagate community-id assignments where each device owns a disjoint
    /// vertex range and non-owned slots hold 0).
    pub fn all_reduce_max_u32(&self, buffers: &mut [Vec<u32>]) -> CommEvent {
        assert_eq!(buffers.len(), self.num_devices, "one buffer per device");
        let len = buffers.first().map_or(0, |b| b.len());
        assert!(buffers.iter().all(|b| b.len() == len));
        let mut max = vec![0u32; len];
        for b in buffers.iter() {
            for (s, x) in max.iter_mut().zip(b) {
                *s = (*s).max(*x);
            }
        }
        for b in buffers.iter_mut() {
            b.copy_from_slice(&max);
        }
        let payload = (len * std::mem::size_of::<u32>()) as u64;
        CommEvent {
            kind: CollectiveKind::AllReduce,
            payload_bytes: payload,
            time_us: self.all_reduce_time_us(payload),
        }
    }

    /// Broadcast: copies `root`'s buffer to every device slot. Ring
    /// pipeline cost: `(p−1)·α + bytes/β` for large messages.
    pub fn broadcast<T: Clone>(&self, buffers: &mut [Vec<T>], root: usize) -> CommEvent {
        assert_eq!(buffers.len(), self.num_devices, "one buffer per device");
        assert!(root < self.num_devices, "root device out of range");
        let src = buffers[root].clone();
        let bytes = (src.len() * std::mem::size_of::<T>()) as u64;
        for (d, buf) in buffers.iter_mut().enumerate() {
            if d != root {
                *buf = src.clone();
            }
        }
        let p = self.num_devices as f64;
        let time_us = if self.num_devices == 1 {
            0.0
        } else {
            (p - 1.0) * self.alpha_us + bytes as f64 / self.bytes_per_us
        };
        CommEvent {
            kind: CollectiveKind::Broadcast,
            payload_bytes: bytes,
            time_us,
        }
    }

    /// Modelled time for an AllToAll moving `total_bytes` across all device
    /// pairs (self-sends excluded). Two schedules are modelled and the
    /// cheaper is charged, the selection MPI/NCCL implementations make at
    /// runtime:
    ///
    /// * pairwise exchange — `p−1` partner rounds, payload spread over the
    ///   `p` links concurrently active in each round:
    ///   `(p−1)·α + bytes/(p·β)`;
    /// * Bruck — `⌈log₂ p⌉` store-and-forward rounds for latency-bound
    ///   small messages, each round relaying half the blocks:
    ///   `⌈log₂ p⌉·α + max(1, ⌈log₂ p⌉/2)·bytes/(p·β)`.
    pub fn all_to_all_time_us(&self, total_bytes: u64) -> f64 {
        let p = self.num_devices as f64;
        if self.num_devices == 1 {
            return 0.0;
        }
        let link_us = total_bytes as f64 / (p * self.bytes_per_us);
        let pairwise = (p - 1.0) * self.alpha_us + link_us;
        let steps = p.log2().ceil();
        let bruck = steps * self.alpha_us + (steps / 2.0).max(1.0) * link_us;
        pairwise.min(bruck)
    }

    /// AllToAll: `sends[s][t]` is device `s`'s buffer destined for device
    /// `t`; slot `t` of the result holds the concatenation over senders in
    /// ascending device order (devices share the host here, so the
    /// combined buffers are returned once per destination). Self-sends are
    /// delivered but stay off the wire — only cross-device bytes are
    /// counted and costed. `item_bytes` is the wire size of one item.
    pub fn all_to_all<T: Clone>(
        &self,
        sends: &[Vec<Vec<T>>],
        item_bytes: usize,
    ) -> (Vec<Vec<T>>, CommEvent) {
        assert_eq!(sends.len(), self.num_devices, "one send row per device");
        assert!(
            sends.iter().all(|row| row.len() == self.num_devices),
            "one send buffer per destination device"
        );
        let mut received: Vec<Vec<T>> = (0..self.num_devices)
            .map(|t| Vec::with_capacity(sends.iter().map(|row| row[t].len()).sum()))
            .collect();
        let mut wire_items = 0usize;
        for (s, row) in sends.iter().enumerate() {
            for (t, buf) in row.iter().enumerate() {
                if s != t {
                    wire_items += buf.len();
                }
                received[t].extend_from_slice(buf);
            }
        }
        let payload = (wire_items * item_bytes) as u64;
        let event = CommEvent {
            kind: CollectiveKind::AllToAll,
            payload_bytes: payload,
            time_us: self.all_to_all_time_us(payload),
        };
        (received, event)
    }

    /// AllGather: concatenates each device's items; every device receives
    /// the concatenation (returned once — devices share the host here).
    /// `item_bytes` is the wire size of one item.
    pub fn all_gather<T: Clone>(
        &self,
        per_device: &[Vec<T>],
        item_bytes: usize,
    ) -> (Vec<T>, CommEvent) {
        assert_eq!(per_device.len(), self.num_devices, "one buffer per device");
        let total: usize = per_device.iter().map(|v| v.len()).sum();
        let mut out = Vec::with_capacity(total);
        for v in per_device {
            out.extend_from_slice(v);
        }
        let payload = (total * item_bytes) as u64;
        let event = CommEvent {
            kind: CollectiveKind::AllGather,
            payload_bytes: payload,
            time_us: self.all_gather_time_us(payload),
        };
        (out, event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_reduce_sums_everywhere() {
        let g = DeviceGroup::new(3);
        let mut bufs = vec![vec![1.0, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]];
        let ev = g.all_reduce_sum(&mut bufs);
        for b in &bufs {
            assert_eq!(b, &vec![111.0, 222.0]);
        }
        assert_eq!(ev.kind, CollectiveKind::AllReduce);
        assert_eq!(ev.payload_bytes, 16);
        assert!(ev.time_us > 0.0);
    }

    #[test]
    fn all_reduce_max_propagates_owned_slots() {
        let g = DeviceGroup::new(2);
        let mut bufs = vec![vec![7, 0, 3, 0], vec![0, 9, 0, 1]];
        g.all_reduce_max_u32(&mut bufs);
        assert_eq!(bufs[0], vec![7, 9, 3, 1]);
        assert_eq!(bufs[1], vec![7, 9, 3, 1]);
    }

    #[test]
    fn all_gather_concatenates_in_device_order() {
        let g = DeviceGroup::new(2);
        let (out, ev) = g.all_gather(&[vec![1u32, 2], vec![3u32]], 4);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(ev.payload_bytes, 12);
    }

    #[test]
    fn all_to_all_routes_and_orders_by_sender() {
        let g = DeviceGroup::new(3);
        // sends[s][t]: s*10 + t tagged items, two from device 0.
        let sends = vec![
            vec![vec![0u32], vec![1, 1], vec![2]],
            vec![vec![10], vec![11], vec![12]],
            vec![vec![20], vec![21], vec![22]],
        ];
        let (recv, ev) = g.all_to_all(&sends, 4);
        assert_eq!(recv[0], vec![0, 10, 20]);
        assert_eq!(recv[1], vec![1, 1, 11, 21]);
        assert_eq!(recv[2], vec![2, 12, 22]);
        assert_eq!(ev.kind, CollectiveKind::AllToAll);
        // Diagonal (0, 11, 22) stays local: 7 of 10 items on the wire.
        assert_eq!(ev.payload_bytes, 7 * 4);
        assert!(ev.time_us > 0.0);
    }

    #[test]
    fn all_to_all_single_device_is_free() {
        let g = DeviceGroup::new(1);
        let (recv, ev) = g.all_to_all(&[vec![vec![5u8, 6]]], 1);
        assert_eq!(recv, vec![vec![5, 6]]);
        assert_eq!(ev.payload_bytes, 0);
        assert_eq!(ev.time_us, 0.0);
        assert_eq!(g.all_to_all_time_us(1_000_000), 0.0);
    }

    #[test]
    #[should_panic(expected = "one send buffer per destination")]
    fn all_to_all_rejects_ragged_send_matrix() {
        let g = DeviceGroup::new(2);
        let sends = vec![vec![vec![1u8], vec![2]], vec![vec![3]]];
        g.all_to_all(&sends, 1);
    }

    #[test]
    fn all_to_all_selects_bruck_for_small_and_pairwise_for_large() {
        let g = DeviceGroup::new(8);
        // Latency-bound: 3 Bruck steps (15 µs of α) beat 7 pairwise rounds.
        let small = g.all_to_all_time_us(1_000);
        assert!(small < (g.num_devices as f64 - 1.0) * g.alpha_us);
        assert!(small >= 3.0 * g.alpha_us);
        // Bandwidth-bound: Bruck's 1.5× relayed bytes lose to pairwise.
        let big_bytes = 100_000_000u64;
        let pairwise = 7.0 * g.alpha_us + big_bytes as f64 / (8.0 * g.bytes_per_us);
        assert_eq!(g.all_to_all_time_us(big_bytes), pairwise);
        // p = 2 degenerates to one direct exchange either way.
        let g2 = DeviceGroup::new(2);
        assert_eq!(
            g2.all_to_all_time_us(50_000),
            g2.alpha_us + 50_000.0 / (2.0 * g2.bytes_per_us)
        );
    }

    #[test]
    fn all_to_all_cheaper_than_gathering_everything() {
        // The exchange premise: shipping only cross-partition rows through
        // the p concurrently active links beats replicating the full state.
        let g = DeviceGroup::new(8);
        let ghost_bytes = 100_000u64;
        let full_bytes = 10_000_000u64;
        assert!(g.all_to_all_time_us(ghost_bytes) < g.all_gather_time_us(full_bytes) / 10.0);
    }

    #[test]
    fn broadcast_copies_root_everywhere() {
        let g = DeviceGroup::new(3);
        let mut bufs = vec![vec![0u32; 2], vec![7, 8], vec![0, 0]];
        let ev = g.broadcast(&mut bufs, 1);
        assert!(bufs.iter().all(|b| b == &vec![7, 8]));
        assert_eq!(ev.kind, CollectiveKind::Broadcast);
        assert_eq!(ev.payload_bytes, 8);
        assert!(ev.time_us > 0.0);
    }

    #[test]
    #[should_panic(expected = "root device out of range")]
    fn broadcast_rejects_bad_root() {
        let g = DeviceGroup::new(2);
        let mut bufs = vec![vec![0u8], vec![0u8]];
        g.broadcast(&mut bufs, 5);
    }

    #[test]
    fn single_device_costs_nothing() {
        let g = DeviceGroup::new(1);
        assert_eq!(g.all_reduce_time_us(1_000_000), 0.0);
        assert_eq!(g.all_gather_time_us(1_000_000), 0.0);
    }

    #[test]
    fn sparse_gather_beats_dense_reduce_when_few_moved() {
        // The adaptive-synchronisation premise: with few moved vertices the
        // AllGather of deltas is cheaper than the full-state AllReduce.
        let g = DeviceGroup::new(8);
        let n = 1_000_000u64;
        let moved = 10_000u64;
        let dense = g.all_reduce_time_us(n * 8);
        let sparse = g.all_gather_time_us(moved * 12);
        assert!(sparse < dense / 10.0, "sparse {sparse} vs dense {dense}");
    }

    #[test]
    fn dense_beats_sparse_when_everything_moves() {
        let g = DeviceGroup::new(8);
        let n = 1_000_000u64;
        let dense = g.all_reduce_time_us(n * 4);
        let sparse = g.all_gather_time_us(n * 12);
        assert!(dense < sparse, "dense {dense} vs sparse {sparse}");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn all_reduce_rejects_ragged_buffers() {
        let g = DeviceGroup::new(2);
        let mut bufs = vec![vec![1.0], vec![1.0, 2.0]];
        g.all_reduce_sum(&mut bufs);
    }
}
