//! # gala-gpu — a deterministic SIMT GPU simulator
//!
//! The GALA paper's kernel-level contributions are about *where state
//! lives* on a GPU (registers vs. shared memory vs. global memory) and
//! *which warp/block primitives move it*. This crate reproduces that
//! execution model in portable Rust:
//!
//! * [`warp`] — 32-lane warps with the CUDA warp-level primitives the paper
//!   uses (`__match_any_sync`, `__reduce_add_sync`, `__reduce_max_sync`,
//!   plus `shfl`/`ballot`), implemented lane-array style with active masks.
//! * [`block`] — thread blocks with a byte-budgeted shared-memory arena.
//! * [`memory`] — per-space access tallies and an explicit latency
//!   [`memory::CostModel`] turning tallies into simulated cycles.
//! * [`atomics`] — device atomics (`atomic_cas`, `atomic_add`) with access
//!   accounting.
//! * [`grid`] — kernel launch: a work list fanned out over host threads
//!   (rayon), one simulated block/warp per item, tallies reduced at the end.
//! * [`comm`] — multi-device collectives (`AllReduce`, `AllGather`) under a
//!   ring α–β cost model, standing in for NCCL over NVLink.
//! * [`profile`] — named profiling spans attributing tallies, counters and
//!   simulated cycles to phases of a run (zero-cost when disabled).
//!
//! The simulator is *functional + cost-counting*, not cycle-accurate: kernels
//! execute their real algorithm (so results are exact) while every memory
//! access is attributed to a space; the cost model then yields the relative
//! performance shapes the paper reports (Figs 4, 9, 10). Everything is
//! deterministic — no wall-clock, no unseeded randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomics;
pub mod block;
pub mod comm;
pub mod grid;
pub mod memory;
pub mod profile;
pub mod scan;
pub mod sorting;
pub mod warp;

pub use block::SharedMem;
pub use memory::{CostModel, MemTally, Space};
pub use profile::{Profiler, SpanRecord};
pub use warp::{Warp, WARP_SIZE};
