//! A simulated bitonic sorting network with memory accounting.
//!
//! Sort-based DecideAndMove strategies (the cuGraph family the paper's
//! Section 2.4 critiques) pay for a device sort of the `(community,
//! weight)` pairs. Bitonic sort is the canonical data-independent network
//! used inside GPU sort kernels: `log²(n)` stages of compare-exchange
//! passes, each touching every element — so its traffic is a *measured*
//! quantity here, not a closed-form estimate.

use crate::memory::{MemTally, Space};

/// Sorts `items` by key with a bitonic network over the next power of two,
/// charging every compare-exchange's two loads (and the stores of actual
/// swaps) to `space`. Padding elements (`u32::MAX` keys) are free — a real
/// kernel masks them the same way.
pub fn bitonic_sort_by_key<T: Copy>(items: &mut [(u32, T)], space: Space, tally: &mut MemTally) {
    let n = items.len();
    if n <= 1 {
        return;
    }
    debug_assert!(
        items.iter().all(|&(k, _)| k != u32::MAX),
        "u32::MAX keys are reserved for padding"
    );
    // The network is only correct over power-of-two sizes: pad with
    // `u32::MAX` sentinels (they sink to the tail of the final ascending
    // order) and run the full network, as a device kernel would.
    let padded_len = n.next_power_of_two();
    let dummy = items[0].1;
    let mut buf: Vec<(u32, T)> = Vec::with_capacity(padded_len);
    buf.extend_from_slice(items);
    buf.resize(padded_len, (u32::MAX, dummy));
    let mut k = 2;
    while k <= padded_len {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..padded_len {
                let partner = i ^ j;
                if partner <= i {
                    continue; // each pair once
                }
                // Pure-padding compares are masked out on device; compares
                // touching at least one live element execute and count.
                if i < n || partner < n {
                    tally.load(space, 2);
                }
                let ascending = i & k == 0;
                let out_of_order = if ascending {
                    buf[i].0 > buf[partner].0
                } else {
                    buf[i].0 < buf[partner].0
                };
                if out_of_order {
                    buf.swap(i, partner);
                    if i < n || partner < n {
                        tally.store(space, 2);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    items.copy_from_slice(&buf[..n]);
    debug_assert!(items.windows(2).all(|w| w[0].0 <= w[1].0));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_sorted(mut input: Vec<(u32, u64)>) {
        let mut tally = MemTally::new();
        let mut expected = input.clone();
        expected.sort_by_key(|&(k, _)| k);
        let expected_keys: Vec<u32> = expected.iter().map(|&(k, _)| k).collect();
        bitonic_sort_by_key(&mut input, Space::Global, &mut tally);
        let keys: Vec<u32> = input.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, expected_keys);
    }

    #[test]
    fn sorts_power_of_two_sizes() {
        check_sorted((0..64u32).rev().map(|k| (k, k as u64)).collect());
    }

    #[test]
    fn sorts_ragged_sizes() {
        for n in [0usize, 1, 2, 3, 5, 17, 33, 100] {
            check_sorted(
                (0..n as u32)
                    .map(|k| ((k * 7919) % 101, k as u64))
                    .collect(),
            );
        }
    }

    #[test]
    fn sorts_with_duplicates() {
        check_sorted(vec![(3, 0), (1, 1), (3, 2), (1, 3), (2, 4), (3, 5)]);
    }

    #[test]
    fn traffic_scales_as_n_log_squared() {
        let mut t_small = MemTally::new();
        let mut small: Vec<(u32, u8)> = (0..64u32).rev().map(|k| (k, 0)).collect();
        bitonic_sort_by_key(&mut small, Space::Global, &mut t_small);
        let mut t_big = MemTally::new();
        let mut big: Vec<(u32, u8)> = (0..1024u32).rev().map(|k| (k, 0)).collect();
        bitonic_sort_by_key(&mut big, Space::Global, &mut t_big);
        // n log² n ratio: (1024·100) / (64·36) ≈ 44; loads must scale
        // super-linearly but well below quadratically (256x).
        let ratio = t_big.global_loads as f64 / t_small.global_loads as f64;
        assert!(
            (16.0..120.0).contains(&ratio),
            "ratio {ratio}, small {}, big {}",
            t_small.global_loads,
            t_big.global_loads
        );
    }

    #[test]
    fn values_follow_their_keys() {
        let mut items = vec![(9u32, "nine"), (1, "one"), (5, "five")];
        let mut tally = MemTally::new();
        bitonic_sort_by_key(&mut items, Space::Shared, &mut tally);
        assert_eq!(items, vec![(1, "one"), (5, "five"), (9, "nine")]);
        assert!(tally.shared_loads > 0);
        assert_eq!(tally.global_loads, 0);
    }
}
