//! Memory-space access accounting and the latency cost model.
//!
//! Every simulated kernel carries a [`MemTally`] and attributes each load,
//! store, atomic, and warp primitive to a [`Space`]. Tallies are plain
//! counters (no atomics) so counting is nearly free on the host; the grid
//! launcher reduces per-task tallies into one total. A [`CostModel`] then
//! converts a tally into *simulated cycles*, which is what the experiment
//! harness reports alongside host wall-clock.

use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// A GPU memory space, ordered fastest to slowest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Space {
    /// Per-thread registers (the shuffle kernel's state home).
    Register,
    /// Per-block shared memory (the hierarchical hashtable's fast level).
    Shared,
    /// Device global memory (DRAM/HBM).
    Global,
}

/// Access counts per memory space plus warp-primitive and atomic counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemTally {
    /// Register accesses (reads + writes).
    pub register_ops: u64,
    /// Shared-memory loads.
    pub shared_loads: u64,
    /// Shared-memory stores.
    pub shared_stores: u64,
    /// Global-memory loads.
    pub global_loads: u64,
    /// Global-memory stores.
    pub global_stores: u64,
    /// Atomic operations on shared memory.
    pub shared_atomics: u64,
    /// Atomic operations on global memory.
    pub global_atomics: u64,
    /// Warp-level primitive invocations (match/reduce/shfl/ballot).
    pub warp_primitives: u64,
}

impl MemTally {
    /// A zeroed tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` loads from `space`.
    #[inline]
    pub fn load(&mut self, space: Space, n: u64) {
        match space {
            Space::Register => self.register_ops += n,
            Space::Shared => self.shared_loads += n,
            Space::Global => self.global_loads += n,
        }
    }

    /// Records `n` stores to `space`.
    #[inline]
    pub fn store(&mut self, space: Space, n: u64) {
        match space {
            Space::Register => self.register_ops += n,
            Space::Shared => self.shared_stores += n,
            Space::Global => self.global_stores += n,
        }
    }

    /// Records `n` atomic operations on `space` (registers have no atomics).
    #[inline]
    pub fn atomic(&mut self, space: Space, n: u64) {
        match space {
            Space::Register => panic!("no atomics on registers"),
            Space::Shared => self.shared_atomics += n,
            Space::Global => self.global_atomics += n,
        }
    }

    /// Records `n` warp-primitive invocations.
    #[inline]
    pub fn warp_primitive(&mut self, n: u64) {
        self.warp_primitives += n;
    }

    /// Total accesses touching shared memory (loads + stores + atomics).
    pub fn shared_total(&self) -> u64 {
        self.shared_loads + self.shared_stores + self.shared_atomics
    }

    /// Total accesses touching global memory (loads + stores + atomics).
    pub fn global_total(&self) -> u64 {
        self.global_loads + self.global_stores + self.global_atomics
    }
}

impl Add for MemTally {
    type Output = MemTally;
    fn add(self, rhs: MemTally) -> MemTally {
        MemTally {
            register_ops: self.register_ops + rhs.register_ops,
            shared_loads: self.shared_loads + rhs.shared_loads,
            shared_stores: self.shared_stores + rhs.shared_stores,
            global_loads: self.global_loads + rhs.global_loads,
            global_stores: self.global_stores + rhs.global_stores,
            shared_atomics: self.shared_atomics + rhs.shared_atomics,
            global_atomics: self.global_atomics + rhs.global_atomics,
            warp_primitives: self.warp_primitives + rhs.warp_primitives,
        }
    }
}

impl AddAssign for MemTally {
    fn add_assign(&mut self, rhs: MemTally) {
        *self = *self + rhs;
    }
}

impl Sum for MemTally {
    fn sum<I: Iterator<Item = MemTally>>(iter: I) -> Self {
        iter.fold(MemTally::default(), |a, b| a + b)
    }
}

/// Latency model translating a [`MemTally`] into simulated cycles.
///
/// Defaults follow published A100 microbenchmarks to the right order of
/// magnitude: registers ~1 cycle, shared ~25, global ~400 (uncached),
/// atomics costlier than plain accesses, warp primitives a handful of
/// cycles. Only the *ratios* matter for the reproduced figures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Cycles per register access.
    pub register: f64,
    /// Cycles per shared-memory access.
    pub shared: f64,
    /// Cycles per global-memory access.
    pub global: f64,
    /// Cycles per shared-memory atomic.
    pub shared_atomic: f64,
    /// Cycles per global-memory atomic.
    pub global_atomic: f64,
    /// Cycles per warp primitive.
    pub warp_primitive: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            register: 1.0,
            shared: 25.0,
            global: 400.0,
            shared_atomic: 40.0,
            global_atomic: 600.0,
            warp_primitive: 8.0,
        }
    }
}

impl CostModel {
    /// Simulated cycles for `tally` under this model.
    pub fn cycles(&self, tally: &MemTally) -> f64 {
        tally.register_ops as f64 * self.register
            + (tally.shared_loads + tally.shared_stores) as f64 * self.shared
            + (tally.global_loads + tally.global_stores) as f64 * self.global
            + tally.shared_atomics as f64 * self.shared_atomic
            + tally.global_atomics as f64 * self.global_atomic
            + tally.warp_primitives as f64 * self.warp_primitive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates_per_space() {
        let mut t = MemTally::new();
        t.load(Space::Global, 3);
        t.store(Space::Shared, 2);
        t.atomic(Space::Global, 1);
        t.load(Space::Register, 5);
        t.warp_primitive(4);
        assert_eq!(t.global_loads, 3);
        assert_eq!(t.shared_stores, 2);
        assert_eq!(t.global_atomics, 1);
        assert_eq!(t.register_ops, 5);
        assert_eq!(t.warp_primitives, 4);
        assert_eq!(t.global_total(), 4);
        assert_eq!(t.shared_total(), 2);
    }

    #[test]
    fn tallies_sum() {
        let mut a = MemTally::new();
        a.load(Space::Global, 1);
        let mut b = MemTally::new();
        b.load(Space::Global, 2);
        b.atomic(Space::Shared, 7);
        let s: MemTally = [a, b].into_iter().sum();
        assert_eq!(s.global_loads, 3);
        assert_eq!(s.shared_atomics, 7);
    }

    #[test]
    fn cost_model_orders_spaces() {
        let m = CostModel::default();
        let mut reg = MemTally::new();
        reg.load(Space::Register, 100);
        let mut sh = MemTally::new();
        sh.load(Space::Shared, 100);
        let mut gl = MemTally::new();
        gl.load(Space::Global, 100);
        assert!(m.cycles(&reg) < m.cycles(&sh));
        assert!(m.cycles(&sh) < m.cycles(&gl));
    }

    #[test]
    #[should_panic(expected = "no atomics on registers")]
    fn register_atomics_rejected() {
        MemTally::new().atomic(Space::Register, 1);
    }
}
