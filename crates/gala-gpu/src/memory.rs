//! Memory-space access accounting and the latency cost model.
//!
//! Every simulated kernel carries a [`MemTally`] and attributes each load,
//! store, atomic, and warp primitive to a [`Space`]. Tallies are plain
//! counters (no atomics) so counting is nearly free on the host; the grid
//! launcher reduces per-task tallies into one total. A [`CostModel`] then
//! converts a tally into *simulated cycles*, which is what the experiment
//! harness reports alongside host wall-clock.

use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Bytes per global-memory cache-line segment used for coalescing
/// accounting, matching the 128-byte L1 line on NVIDIA parts.
pub const SEGMENT_BYTES: u64 = 128;

/// A GPU memory space, ordered fastest to slowest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Space {
    /// Per-thread registers (the shuffle kernel's state home).
    Register,
    /// Per-block shared memory (the hierarchical hashtable's fast level).
    Shared,
    /// Device global memory (DRAM/HBM).
    Global,
}

/// Access counts per memory space plus warp-primitive and atomic counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemTally {
    /// Register accesses (reads + writes).
    pub register_ops: u64,
    /// Shared-memory loads.
    pub shared_loads: u64,
    /// Shared-memory stores.
    pub shared_stores: u64,
    /// Global-memory loads.
    pub global_loads: u64,
    /// Global-memory stores.
    pub global_stores: u64,
    /// Atomic operations on shared memory.
    pub shared_atomics: u64,
    /// Atomic operations on global memory.
    pub global_atomics: u64,
    /// Warp-level primitive invocations (match/reduce/shfl/ballot).
    pub warp_primitives: u64,
    /// Lockstep SIMT steps executed (one per warp-wide instruction issue).
    pub simt_steps: u64,
    /// Sum of active-lane mask populations over all SIMT steps. Divergence
    /// is `1 - simt_active_lanes / (simt_steps * 32)`.
    pub simt_active_lanes: u64,
    /// Branches where both sides of a predicate had active lanes, forcing
    /// serialized execution of the divergent paths.
    pub simt_serialized: u64,
    /// Warp-wide global-memory requests submitted for coalescing analysis.
    pub coalesce_requests: u64,
    /// Distinct [`SEGMENT_BYTES`]-sized segments actually touched by those
    /// requests (memory transactions issued).
    pub coalesce_transactions: u64,
    /// Minimum transactions the same requests would need if perfectly
    /// coalesced. Efficiency is `coalesce_ideal / coalesce_transactions`.
    pub coalesce_ideal: u64,
}

impl MemTally {
    /// A zeroed tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` loads from `space`.
    #[inline]
    pub fn load(&mut self, space: Space, n: u64) {
        match space {
            Space::Register => self.register_ops += n,
            Space::Shared => self.shared_loads += n,
            Space::Global => self.global_loads += n,
        }
    }

    /// Records `n` stores to `space`.
    #[inline]
    pub fn store(&mut self, space: Space, n: u64) {
        match space {
            Space::Register => self.register_ops += n,
            Space::Shared => self.shared_stores += n,
            Space::Global => self.global_stores += n,
        }
    }

    /// Records `n` atomic operations on `space` (registers have no atomics).
    #[inline]
    pub fn atomic(&mut self, space: Space, n: u64) {
        match space {
            Space::Register => panic!("no atomics on registers"),
            Space::Shared => self.shared_atomics += n,
            Space::Global => self.global_atomics += n,
        }
    }

    /// Records `n` warp-primitive invocations.
    #[inline]
    pub fn warp_primitive(&mut self, n: u64) {
        self.warp_primitives += n;
    }

    /// Records one lockstep SIMT step executed under `mask`: every warp-wide
    /// instruction issue counts one step plus the population of its active
    /// mask, so divergence falls out as the gap to 32 lanes per step.
    #[inline]
    pub fn simt_step(&mut self, mask: u32) {
        self.simt_steps += 1;
        self.simt_active_lanes += u64::from(mask.count_ones());
    }

    /// Records one serialized divergent branch (both sides of a warp-level
    /// predicate had active lanes, so the hardware runs them back to back).
    #[inline]
    pub fn simt_serialize(&mut self, n: u64) {
        self.simt_serialized += n;
    }

    /// Records one warp-wide global-memory request touching elements of
    /// `elem_bytes` bytes at the given element `offsets` (one per active
    /// lane). Counts the distinct [`SEGMENT_BYTES`] cache-line segments the
    /// request needs (actual transactions) against the minimum a perfectly
    /// coalesced request of the same size would need (ideal transactions).
    ///
    /// This is accounting *about* accesses counted elsewhere via
    /// [`Self::load`]/[`Self::store`]; it never changes load/store counts,
    /// so the [`CostModel`] cycle totals are unaffected.
    pub fn global_request(&mut self, offsets: &[u64], elem_bytes: u64) {
        if offsets.is_empty() {
            return;
        }
        self.coalesce_requests += 1;
        let mut segs = [0u64; 32];
        let n = offsets.len().min(32);
        for (slot, &off) in segs.iter_mut().zip(offsets.iter()) {
            *slot = off * elem_bytes / SEGMENT_BYTES;
        }
        let segs = &mut segs[..n];
        segs.sort_unstable();
        let mut distinct = 1u64;
        for i in 1..n {
            if segs[i] != segs[i - 1] {
                distinct += 1;
            }
        }
        let ideal = (n as u64 * elem_bytes)
            .div_ceil(SEGMENT_BYTES)
            .max(1)
            .min(distinct);
        self.coalesce_transactions += distinct;
        self.coalesce_ideal += ideal;
    }

    /// Branch-divergence ratio in `[0, 1]`: the fraction of lane-slots left
    /// idle across all SIMT steps. Zero when nothing was recorded.
    pub fn divergence(&self) -> f64 {
        if self.simt_steps == 0 {
            return 0.0;
        }
        let capacity = self.simt_steps * 32;
        1.0 - self.simt_active_lanes as f64 / capacity as f64
    }

    /// Coalescing efficiency in `(0, 1]`: ideal over actual transactions.
    /// One (perfect) when no requests were recorded.
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.coalesce_transactions == 0 {
            return 1.0;
        }
        self.coalesce_ideal as f64 / self.coalesce_transactions as f64
    }

    /// Total accesses touching shared memory (loads + stores + atomics).
    pub fn shared_total(&self) -> u64 {
        self.shared_loads + self.shared_stores + self.shared_atomics
    }

    /// Total accesses touching global memory (loads + stores + atomics).
    pub fn global_total(&self) -> u64 {
        self.global_loads + self.global_stores + self.global_atomics
    }
}

impl Add for MemTally {
    type Output = MemTally;
    fn add(self, rhs: MemTally) -> MemTally {
        MemTally {
            register_ops: self.register_ops + rhs.register_ops,
            shared_loads: self.shared_loads + rhs.shared_loads,
            shared_stores: self.shared_stores + rhs.shared_stores,
            global_loads: self.global_loads + rhs.global_loads,
            global_stores: self.global_stores + rhs.global_stores,
            shared_atomics: self.shared_atomics + rhs.shared_atomics,
            global_atomics: self.global_atomics + rhs.global_atomics,
            warp_primitives: self.warp_primitives + rhs.warp_primitives,
            simt_steps: self.simt_steps + rhs.simt_steps,
            simt_active_lanes: self.simt_active_lanes + rhs.simt_active_lanes,
            simt_serialized: self.simt_serialized + rhs.simt_serialized,
            coalesce_requests: self.coalesce_requests + rhs.coalesce_requests,
            coalesce_transactions: self.coalesce_transactions + rhs.coalesce_transactions,
            coalesce_ideal: self.coalesce_ideal + rhs.coalesce_ideal,
        }
    }
}

impl AddAssign for MemTally {
    fn add_assign(&mut self, rhs: MemTally) {
        *self = *self + rhs;
    }
}

impl Sum for MemTally {
    fn sum<I: Iterator<Item = MemTally>>(iter: I) -> Self {
        iter.fold(MemTally::default(), |a, b| a + b)
    }
}

/// Latency model translating a [`MemTally`] into simulated cycles.
///
/// Defaults follow published A100 microbenchmarks to the right order of
/// magnitude: registers ~1 cycle, shared ~25, global ~400 (uncached),
/// atomics costlier than plain accesses, warp primitives a handful of
/// cycles. Only the *ratios* matter for the reproduced figures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Cycles per register access.
    pub register: f64,
    /// Cycles per shared-memory access.
    pub shared: f64,
    /// Cycles per global-memory access.
    pub global: f64,
    /// Cycles per shared-memory atomic.
    pub shared_atomic: f64,
    /// Cycles per global-memory atomic.
    pub global_atomic: f64,
    /// Cycles per warp primitive.
    pub warp_primitive: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            register: 1.0,
            shared: 25.0,
            global: 400.0,
            shared_atomic: 40.0,
            global_atomic: 600.0,
            warp_primitive: 8.0,
        }
    }
}

impl CostModel {
    /// Simulated cycles for `tally` under this model.
    pub fn cycles(&self, tally: &MemTally) -> f64 {
        tally.register_ops as f64 * self.register
            + (tally.shared_loads + tally.shared_stores) as f64 * self.shared
            + (tally.global_loads + tally.global_stores) as f64 * self.global
            + tally.shared_atomics as f64 * self.shared_atomic
            + tally.global_atomics as f64 * self.global_atomic
            + tally.warp_primitives as f64 * self.warp_primitive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates_per_space() {
        let mut t = MemTally::new();
        t.load(Space::Global, 3);
        t.store(Space::Shared, 2);
        t.atomic(Space::Global, 1);
        t.load(Space::Register, 5);
        t.warp_primitive(4);
        assert_eq!(t.global_loads, 3);
        assert_eq!(t.shared_stores, 2);
        assert_eq!(t.global_atomics, 1);
        assert_eq!(t.register_ops, 5);
        assert_eq!(t.warp_primitives, 4);
        assert_eq!(t.global_total(), 4);
        assert_eq!(t.shared_total(), 2);
    }

    #[test]
    fn tallies_sum() {
        let mut a = MemTally::new();
        a.load(Space::Global, 1);
        let mut b = MemTally::new();
        b.load(Space::Global, 2);
        b.atomic(Space::Shared, 7);
        let s: MemTally = [a, b].into_iter().sum();
        assert_eq!(s.global_loads, 3);
        assert_eq!(s.shared_atomics, 7);
    }

    #[test]
    fn cost_model_orders_spaces() {
        let m = CostModel::default();
        let mut reg = MemTally::new();
        reg.load(Space::Register, 100);
        let mut sh = MemTally::new();
        sh.load(Space::Shared, 100);
        let mut gl = MemTally::new();
        gl.load(Space::Global, 100);
        assert!(m.cycles(&reg) < m.cycles(&sh));
        assert!(m.cycles(&sh) < m.cycles(&gl));
    }

    #[test]
    #[should_panic(expected = "no atomics on registers")]
    fn register_atomics_rejected() {
        MemTally::new().atomic(Space::Register, 1);
    }

    #[test]
    fn simt_steps_track_active_lanes() {
        let mut t = MemTally::new();
        t.simt_step(u32::MAX); // 32 lanes
        t.simt_step(0b1111); // 4 lanes
        assert_eq!(t.simt_steps, 2);
        assert_eq!(t.simt_active_lanes, 36);
        assert!((t.divergence() - (1.0 - 36.0 / 64.0)).abs() < 1e-12);
        t.simt_serialize(3);
        assert_eq!(t.simt_serialized, 3);
    }

    #[test]
    fn divergence_zero_when_unrecorded() {
        assert_eq!(MemTally::new().divergence(), 0.0);
    }

    #[test]
    fn contiguous_request_is_fully_coalesced() {
        let mut t = MemTally::new();
        // 32 consecutive 4-byte elements = 128 bytes = exactly one segment.
        let offsets: Vec<u64> = (0..32).collect();
        t.global_request(&offsets, 4);
        assert_eq!(t.coalesce_requests, 1);
        assert_eq!(t.coalesce_transactions, 1);
        assert_eq!(t.coalesce_ideal, 1);
        assert_eq!(t.coalescing_efficiency(), 1.0);
    }

    #[test]
    fn strided_request_touches_many_segments() {
        let mut t = MemTally::new();
        // Stride of 32 elements of 4 bytes = one segment per lane.
        let offsets: Vec<u64> = (0..32).map(|i| i * 32).collect();
        t.global_request(&offsets, 4);
        assert_eq!(t.coalesce_transactions, 32);
        assert_eq!(t.coalesce_ideal, 1);
        assert!((t.coalescing_efficiency() - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_offsets_share_segments() {
        let mut t = MemTally::new();
        t.global_request(&[7, 7, 7, 7], 8);
        assert_eq!(t.coalesce_transactions, 1);
        assert_eq!(t.coalesce_ideal, 1);
    }

    #[test]
    fn empty_request_is_ignored() {
        let mut t = MemTally::new();
        t.global_request(&[], 4);
        assert_eq!(t.coalesce_requests, 0);
        assert_eq!(t.coalescing_efficiency(), 1.0);
    }

    #[test]
    fn new_counters_do_not_change_cycles() {
        let m = CostModel::default();
        let mut t = MemTally::new();
        t.load(Space::Global, 10);
        let before = m.cycles(&t);
        t.simt_step(0b1);
        t.simt_serialize(5);
        t.global_request(&[0, 100, 200], 4);
        assert_eq!(m.cycles(&t), before);
    }

    #[test]
    fn new_counters_sum() {
        let mut a = MemTally::new();
        a.simt_step(0b11);
        a.global_request(&[0], 4);
        let mut b = MemTally::new();
        b.simt_step(u32::MAX);
        b.simt_serialize(1);
        b.global_request(&[0, 64], 4);
        let s = a + b;
        assert_eq!(s.simt_steps, 2);
        assert_eq!(s.simt_active_lanes, 34);
        assert_eq!(s.simt_serialized, 1);
        assert_eq!(s.coalesce_requests, 2);
        assert_eq!(s.coalesce_transactions, 3);
        assert_eq!(s.coalesce_ideal, 2);
    }
}
