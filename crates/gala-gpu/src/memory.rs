//! Memory-space access accounting and the latency cost model.
//!
//! Every simulated kernel carries a [`MemTally`] and attributes each load,
//! store, atomic, and warp primitive to a [`Space`]. Tallies are plain
//! counters (no atomics) so counting is nearly free on the host; the grid
//! launcher reduces per-task tallies into one total. A [`CostModel`] then
//! converts a tally into *simulated cycles*, which is what the experiment
//! harness reports alongside host wall-clock.

use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Bytes per global-memory cache-line segment used for coalescing
/// accounting, matching the 128-byte L1 line on NVIDIA parts.
pub const SEGMENT_BYTES: u64 = 128;

/// A GPU memory space, ordered fastest to slowest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Space {
    /// Per-thread registers (the shuffle kernel's state home).
    Register,
    /// Per-block shared memory (the hierarchical hashtable's fast level).
    Shared,
    /// Device global memory (DRAM/HBM).
    Global,
}

/// Access counts per memory space plus warp-primitive and atomic counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemTally {
    /// Register accesses (reads + writes).
    pub register_ops: u64,
    /// Shared-memory loads.
    pub shared_loads: u64,
    /// Shared-memory stores.
    pub shared_stores: u64,
    /// Global-memory loads.
    pub global_loads: u64,
    /// Global-memory stores.
    pub global_stores: u64,
    /// Atomic operations on shared memory.
    pub shared_atomics: u64,
    /// Atomic operations on global memory.
    pub global_atomics: u64,
    /// Warp-level primitive invocations (match/reduce/shfl/ballot).
    pub warp_primitives: u64,
    /// Lockstep SIMT steps executed (one per warp-wide instruction issue).
    pub simt_steps: u64,
    /// Sum of active-lane mask populations over all SIMT steps. Divergence
    /// is `1 - simt_active_lanes / (simt_steps * 32)`.
    pub simt_active_lanes: u64,
    /// Branches where both sides of a predicate had active lanes, forcing
    /// serialized execution of the divergent paths.
    pub simt_serialized: u64,
    /// Warp-wide global-memory requests submitted for coalescing analysis.
    pub coalesce_requests: u64,
    /// Distinct [`SEGMENT_BYTES`]-sized segments actually touched by those
    /// requests (memory transactions issued).
    pub coalesce_transactions: u64,
    /// Minimum transactions the same requests would need if perfectly
    /// coalesced. Efficiency is `coalesce_ideal / coalesce_transactions`.
    pub coalesce_ideal: u64,
}

impl MemTally {
    /// A zeroed tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` loads from `space`.
    #[inline]
    pub fn load(&mut self, space: Space, n: u64) {
        match space {
            Space::Register => self.register_ops += n,
            Space::Shared => self.shared_loads += n,
            Space::Global => self.global_loads += n,
        }
    }

    /// Records `n` stores to `space`.
    #[inline]
    pub fn store(&mut self, space: Space, n: u64) {
        match space {
            Space::Register => self.register_ops += n,
            Space::Shared => self.shared_stores += n,
            Space::Global => self.global_stores += n,
        }
    }

    /// Records `n` atomic operations on `space` (registers have no atomics).
    #[inline]
    pub fn atomic(&mut self, space: Space, n: u64) {
        match space {
            Space::Register => panic!("no atomics on registers"),
            Space::Shared => self.shared_atomics += n,
            Space::Global => self.global_atomics += n,
        }
    }

    /// Records `n` warp-primitive invocations.
    #[inline]
    pub fn warp_primitive(&mut self, n: u64) {
        self.warp_primitives += n;
    }

    /// Records one lockstep SIMT step executed under `mask`: every warp-wide
    /// instruction issue counts one step plus the population of its active
    /// mask, so divergence falls out as the gap to 32 lanes per step.
    #[inline]
    pub fn simt_step(&mut self, mask: u32) {
        self.simt_steps += 1;
        self.simt_active_lanes += u64::from(mask.count_ones());
    }

    /// Records one serialized divergent branch (both sides of a warp-level
    /// predicate had active lanes, so the hardware runs them back to back).
    #[inline]
    pub fn simt_serialize(&mut self, n: u64) {
        self.simt_serialized += n;
    }

    /// Records one warp-wide global-memory request touching elements of
    /// `elem_bytes` bytes at the given element `offsets` (one per active
    /// lane). Counts the distinct [`SEGMENT_BYTES`] cache-line segments the
    /// request needs (actual transactions) against the minimum a perfectly
    /// coalesced request of the same size would need (ideal transactions).
    ///
    /// This is accounting *about* accesses counted elsewhere via
    /// [`Self::load`]/[`Self::store`]; it never changes load/store counts,
    /// so the [`CostModel`] cycle totals are unaffected.
    pub fn global_request(&mut self, offsets: &[u64], elem_bytes: u64) {
        if offsets.is_empty() {
            return;
        }
        self.coalesce_requests += 1;
        let mut segs = [0u64; 32];
        let n = offsets.len().min(32);
        for (slot, &off) in segs.iter_mut().zip(offsets.iter()) {
            *slot = off * elem_bytes / SEGMENT_BYTES;
        }
        let segs = &mut segs[..n];
        segs.sort_unstable();
        let mut distinct = 1u64;
        for i in 1..n {
            if segs[i] != segs[i - 1] {
                distinct += 1;
            }
        }
        let ideal = (n as u64 * elem_bytes)
            .div_ceil(SEGMENT_BYTES)
            .max(1)
            .min(distinct);
        self.coalesce_transactions += distinct;
        self.coalesce_ideal += ideal;
    }

    /// Branch-divergence ratio in `[0, 1]`: the fraction of lane-slots left
    /// idle across all SIMT steps. Zero when nothing was recorded.
    pub fn divergence(&self) -> f64 {
        if self.simt_steps == 0 {
            return 0.0;
        }
        let capacity = self.simt_steps * 32;
        1.0 - self.simt_active_lanes as f64 / capacity as f64
    }

    /// Coalescing efficiency in `(0, 1]`: ideal over actual transactions.
    /// One (perfect) when no requests were recorded.
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.coalesce_transactions == 0 {
            return 1.0;
        }
        self.coalesce_ideal as f64 / self.coalesce_transactions as f64
    }

    /// Total accesses touching shared memory (loads + stores + atomics).
    pub fn shared_total(&self) -> u64 {
        self.shared_loads + self.shared_stores + self.shared_atomics
    }

    /// Total accesses touching global memory (loads + stores + atomics).
    pub fn global_total(&self) -> u64 {
        self.global_loads + self.global_stores + self.global_atomics
    }
}

impl Add for MemTally {
    type Output = MemTally;
    fn add(self, rhs: MemTally) -> MemTally {
        MemTally {
            register_ops: self.register_ops + rhs.register_ops,
            shared_loads: self.shared_loads + rhs.shared_loads,
            shared_stores: self.shared_stores + rhs.shared_stores,
            global_loads: self.global_loads + rhs.global_loads,
            global_stores: self.global_stores + rhs.global_stores,
            shared_atomics: self.shared_atomics + rhs.shared_atomics,
            global_atomics: self.global_atomics + rhs.global_atomics,
            warp_primitives: self.warp_primitives + rhs.warp_primitives,
            simt_steps: self.simt_steps + rhs.simt_steps,
            simt_active_lanes: self.simt_active_lanes + rhs.simt_active_lanes,
            simt_serialized: self.simt_serialized + rhs.simt_serialized,
            coalesce_requests: self.coalesce_requests + rhs.coalesce_requests,
            coalesce_transactions: self.coalesce_transactions + rhs.coalesce_transactions,
            coalesce_ideal: self.coalesce_ideal + rhs.coalesce_ideal,
        }
    }
}

impl AddAssign for MemTally {
    fn add_assign(&mut self, rhs: MemTally) {
        *self = *self + rhs;
    }
}

impl Sum for MemTally {
    fn sum<I: Iterator<Item = MemTally>>(iter: I) -> Self {
        iter.fold(MemTally::default(), |a, b| a + b)
    }
}

/// Latency model translating a [`MemTally`] into simulated cycles.
///
/// Defaults follow published A100 microbenchmarks to the right order of
/// magnitude: registers ~1 cycle, shared ~25, global ~400 (uncached),
/// atomics costlier than plain accesses, warp primitives a handful of
/// cycles. Only the *ratios* matter for the reproduced figures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Cycles per register access.
    pub register: f64,
    /// Cycles per shared-memory access.
    pub shared: f64,
    /// Cycles per global-memory access.
    pub global: f64,
    /// Cycles per shared-memory atomic.
    pub shared_atomic: f64,
    /// Cycles per global-memory atomic.
    pub global_atomic: f64,
    /// Cycles per warp primitive.
    pub warp_primitive: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            register: 1.0,
            shared: 25.0,
            global: 400.0,
            shared_atomic: 40.0,
            global_atomic: 600.0,
            warp_primitive: 8.0,
        }
    }
}

impl CostModel {
    /// Simulated cycles for `tally` under this model.
    pub fn cycles(&self, tally: &MemTally) -> f64 {
        tally.register_ops as f64 * self.register
            + (tally.shared_loads + tally.shared_stores) as f64 * self.shared
            + (tally.global_loads + tally.global_stores) as f64 * self.global
            + tally.shared_atomics as f64 * self.shared_atomic
            + tally.global_atomics as f64 * self.global_atomic
            + tally.warp_primitives as f64 * self.warp_primitive
    }

    /// A measured member of the cost-model family: the default per-access
    /// weights scaled by per-component calibration factors (as fitted by
    /// the sim↔native attribution model). `calibrated(1, 1, 1, 1, 1)` is
    /// exactly [`CostModel::default`], so the flat model is one point in
    /// the family. The `global` factor applies to coalesced and uncoalesced
    /// traffic alike — the split is an attribution of the one global
    /// weight, not a second weight.
    pub fn calibrated(
        compute: f64,
        shared_mem: f64,
        global_mem: f64,
        atomics: f64,
        scan_sort: f64,
    ) -> Self {
        let base = Self::default();
        Self {
            register: base.register * compute,
            shared: base.shared * shared_mem,
            global: base.global * global_mem,
            shared_atomic: base.shared_atomic * atomics,
            global_atomic: base.global_atomic * atomics,
            warp_primitive: base.warp_primitive * scan_sort,
        }
    }

    /// Decomposes `tally` into per-component cycle charges under this
    /// model. The components partition [`CostModel::cycles`]: with the
    /// default (integer-weight) model every term is an exactly
    /// representable integer-valued `f64`, so
    /// `components(t).total() == cycles(t)` bit-for-bit.
    ///
    /// The global term is split between coalesced and uncoalesced traffic
    /// by the PR-2 coalescing counters: the fraction of excess transactions
    /// (`transactions - ideal`) over all transactions is charged as
    /// uncoalesced. The split uses integer arithmetic
    /// (`accesses * excess / transactions`, floor) so
    /// `global_coalesced + global_uncoalesced` equals the undivided global
    /// term exactly, never off by a rounding ulp.
    pub fn components(&self, tally: &MemTally) -> ComponentCharges {
        let global_accesses = tally.global_loads + tally.global_stores;
        let uncoalesced_accesses = if tally.coalesce_transactions == 0 {
            0
        } else {
            let excess = tally
                .coalesce_transactions
                .saturating_sub(tally.coalesce_ideal);
            (global_accesses as u128 * excess as u128 / tally.coalesce_transactions as u128) as u64
        };
        let coalesced_accesses = global_accesses - uncoalesced_accesses;
        ComponentCharges {
            compute: tally.register_ops as f64 * self.register,
            shared_mem: (tally.shared_loads + tally.shared_stores) as f64 * self.shared,
            global_coalesced: coalesced_accesses as f64 * self.global,
            global_uncoalesced: uncoalesced_accesses as f64 * self.global,
            atomics: tally.shared_atomics as f64 * self.shared_atomic
                + tally.global_atomics as f64 * self.global_atomic,
            scan_sort: tally.warp_primitives as f64 * self.warp_primitive,
            sync: 0.0,
        }
    }
}

/// Names of the cost components, in the order [`ComponentCharges::get`]
/// and the trace schema use.
pub const COMPONENT_NAMES: [&str; 7] = [
    "compute",
    "shared_mem",
    "global_coalesced",
    "global_uncoalesced",
    "atomics",
    "scan_sort",
    "sync",
];

/// A span's cycles (or wall nanoseconds, on the native backend) broken
/// down by cost component. Produced by [`CostModel::components`] for
/// simulated tallies; native spans charge their entire `elapsed_ns` to
/// `compute` (or `sync` for synchronisation spans) since wall time is
/// undifferentiated.
///
/// Charges are derived, never stored: span merging adds tallies and
/// re-derives, so the decomposition can't drift from the cycle totals.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ComponentCharges {
    /// Register traffic — the arithmetic/bookkeeping proxy.
    pub compute: f64,
    /// Shared-memory loads and stores.
    pub shared_mem: f64,
    /// Global-memory accesses served by ideally-needed transactions.
    pub global_coalesced: f64,
    /// Global-memory accesses attributed to excess (uncoalesced)
    /// transactions.
    pub global_uncoalesced: f64,
    /// Shared and global atomics.
    pub atomics: f64,
    /// Warp-primitive invocations (the match/reduce/scan/sort machinery).
    pub scan_sort: f64,
    /// Synchronisation/communication time (native sync spans only; always
    /// zero for simulated tallies).
    pub sync: f64,
}

impl ComponentCharges {
    /// Sum of all components. Exact (order-independent) whenever every
    /// charge is an integer-valued `f64`, which the default cost model
    /// guarantees.
    pub fn total(&self) -> f64 {
        self.compute
            + self.shared_mem
            + self.global_coalesced
            + self.global_uncoalesced
            + self.atomics
            + self.scan_sort
            + self.sync
    }

    /// The memory-side charge: everything that isn't compute or sync.
    pub fn memory(&self) -> f64 {
        self.shared_mem
            + self.global_coalesced
            + self.global_uncoalesced
            + self.atomics
            + self.scan_sort
    }

    /// Charge by component name (see [`COMPONENT_NAMES`]).
    pub fn get(&self, name: &str) -> Option<f64> {
        Some(match name {
            "compute" => self.compute,
            "shared_mem" => self.shared_mem,
            "global_coalesced" => self.global_coalesced,
            "global_uncoalesced" => self.global_uncoalesced,
            "atomics" => self.atomics,
            "scan_sort" => self.scan_sort,
            "sync" => self.sync,
            _ => return None,
        })
    }

    /// Sets the charge for a component name (see [`COMPONENT_NAMES`]).
    /// Returns false for unknown names.
    pub fn set(&mut self, name: &str, value: f64) -> bool {
        match name {
            "compute" => self.compute = value,
            "shared_mem" => self.shared_mem = value,
            "global_coalesced" => self.global_coalesced = value,
            "global_uncoalesced" => self.global_uncoalesced = value,
            "atomics" => self.atomics = value,
            "scan_sort" => self.scan_sort = value,
            "sync" => self.sync = value,
            _ => return false,
        }
        true
    }

    /// A breakdown charging everything to one wall-clock bucket: `sync`
    /// for spans named like synchronisation, `compute` otherwise. This is
    /// how native (wall-ns) spans decompose — real time carries no
    /// per-access attribution.
    pub fn from_wall_ns(ns: u64, is_sync: bool) -> Self {
        let mut out = Self::default();
        if is_sync {
            out.sync = ns as f64;
        } else {
            out.compute = ns as f64;
        }
        out
    }
}

impl Add for ComponentCharges {
    type Output = ComponentCharges;
    fn add(self, rhs: ComponentCharges) -> ComponentCharges {
        ComponentCharges {
            compute: self.compute + rhs.compute,
            shared_mem: self.shared_mem + rhs.shared_mem,
            global_coalesced: self.global_coalesced + rhs.global_coalesced,
            global_uncoalesced: self.global_uncoalesced + rhs.global_uncoalesced,
            atomics: self.atomics + rhs.atomics,
            scan_sort: self.scan_sort + rhs.scan_sort,
            sync: self.sync + rhs.sync,
        }
    }
}

impl AddAssign for ComponentCharges {
    fn add_assign(&mut self, rhs: ComponentCharges) {
        *self = *self + rhs;
    }
}

impl Sum for ComponentCharges {
    fn sum<I: Iterator<Item = ComponentCharges>>(iter: I) -> Self {
        iter.fold(ComponentCharges::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates_per_space() {
        let mut t = MemTally::new();
        t.load(Space::Global, 3);
        t.store(Space::Shared, 2);
        t.atomic(Space::Global, 1);
        t.load(Space::Register, 5);
        t.warp_primitive(4);
        assert_eq!(t.global_loads, 3);
        assert_eq!(t.shared_stores, 2);
        assert_eq!(t.global_atomics, 1);
        assert_eq!(t.register_ops, 5);
        assert_eq!(t.warp_primitives, 4);
        assert_eq!(t.global_total(), 4);
        assert_eq!(t.shared_total(), 2);
    }

    #[test]
    fn tallies_sum() {
        let mut a = MemTally::new();
        a.load(Space::Global, 1);
        let mut b = MemTally::new();
        b.load(Space::Global, 2);
        b.atomic(Space::Shared, 7);
        let s: MemTally = [a, b].into_iter().sum();
        assert_eq!(s.global_loads, 3);
        assert_eq!(s.shared_atomics, 7);
    }

    #[test]
    fn cost_model_orders_spaces() {
        let m = CostModel::default();
        let mut reg = MemTally::new();
        reg.load(Space::Register, 100);
        let mut sh = MemTally::new();
        sh.load(Space::Shared, 100);
        let mut gl = MemTally::new();
        gl.load(Space::Global, 100);
        assert!(m.cycles(&reg) < m.cycles(&sh));
        assert!(m.cycles(&sh) < m.cycles(&gl));
    }

    #[test]
    #[should_panic(expected = "no atomics on registers")]
    fn register_atomics_rejected() {
        MemTally::new().atomic(Space::Register, 1);
    }

    #[test]
    fn simt_steps_track_active_lanes() {
        let mut t = MemTally::new();
        t.simt_step(u32::MAX); // 32 lanes
        t.simt_step(0b1111); // 4 lanes
        assert_eq!(t.simt_steps, 2);
        assert_eq!(t.simt_active_lanes, 36);
        assert!((t.divergence() - (1.0 - 36.0 / 64.0)).abs() < 1e-12);
        t.simt_serialize(3);
        assert_eq!(t.simt_serialized, 3);
    }

    #[test]
    fn divergence_zero_when_unrecorded() {
        assert_eq!(MemTally::new().divergence(), 0.0);
    }

    #[test]
    fn contiguous_request_is_fully_coalesced() {
        let mut t = MemTally::new();
        // 32 consecutive 4-byte elements = 128 bytes = exactly one segment.
        let offsets: Vec<u64> = (0..32).collect();
        t.global_request(&offsets, 4);
        assert_eq!(t.coalesce_requests, 1);
        assert_eq!(t.coalesce_transactions, 1);
        assert_eq!(t.coalesce_ideal, 1);
        assert_eq!(t.coalescing_efficiency(), 1.0);
    }

    #[test]
    fn strided_request_touches_many_segments() {
        let mut t = MemTally::new();
        // Stride of 32 elements of 4 bytes = one segment per lane.
        let offsets: Vec<u64> = (0..32).map(|i| i * 32).collect();
        t.global_request(&offsets, 4);
        assert_eq!(t.coalesce_transactions, 32);
        assert_eq!(t.coalesce_ideal, 1);
        assert!((t.coalescing_efficiency() - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_offsets_share_segments() {
        let mut t = MemTally::new();
        t.global_request(&[7, 7, 7, 7], 8);
        assert_eq!(t.coalesce_transactions, 1);
        assert_eq!(t.coalesce_ideal, 1);
    }

    #[test]
    fn empty_request_is_ignored() {
        let mut t = MemTally::new();
        t.global_request(&[], 4);
        assert_eq!(t.coalesce_requests, 0);
        assert_eq!(t.coalescing_efficiency(), 1.0);
    }

    #[test]
    fn new_counters_do_not_change_cycles() {
        let m = CostModel::default();
        let mut t = MemTally::new();
        t.load(Space::Global, 10);
        let before = m.cycles(&t);
        t.simt_step(0b1);
        t.simt_serialize(5);
        t.global_request(&[0, 100, 200], 4);
        assert_eq!(m.cycles(&t), before);
    }

    #[test]
    fn calibrated_with_unit_factors_is_the_default() {
        assert_eq!(
            CostModel::calibrated(1.0, 1.0, 1.0, 1.0, 1.0),
            CostModel::default()
        );
        let doubled = CostModel::calibrated(2.0, 1.0, 1.0, 1.0, 1.0);
        assert_eq!(doubled.register, 2.0);
        assert_eq!(doubled.global, CostModel::default().global);
        // Atomics scale shared and global atomics together.
        let hot = CostModel::calibrated(1.0, 1.0, 1.0, 0.5, 1.0);
        assert_eq!(hot.shared_atomic, 20.0);
        assert_eq!(hot.global_atomic, 300.0);
    }

    #[test]
    fn components_partition_cycles_exactly() {
        let m = CostModel::default();
        let mut t = MemTally::new();
        t.load(Space::Register, 123);
        t.load(Space::Shared, 17);
        t.store(Space::Shared, 5);
        t.load(Space::Global, 200);
        t.store(Space::Global, 50);
        t.atomic(Space::Shared, 3);
        t.atomic(Space::Global, 7);
        t.warp_primitive(11);
        // Imperfect coalescing: 10 ideal, 25 actual transactions.
        t.coalesce_requests = 10;
        t.coalesce_transactions = 25;
        t.coalesce_ideal = 10;
        let c = m.components(&t);
        assert_eq!(c.total(), m.cycles(&t), "components must sum to cycles");
        // 250 global accesses * 15 excess / 25 transactions = 150 uncoalesced.
        assert_eq!(c.global_uncoalesced, 150.0 * 400.0);
        assert_eq!(c.global_coalesced, 100.0 * 400.0);
        assert_eq!(c.compute, 123.0);
        assert_eq!(c.shared_mem, 22.0 * 25.0);
        assert_eq!(c.atomics, 3.0 * 40.0 + 7.0 * 600.0);
        assert_eq!(c.scan_sort, 11.0 * 8.0);
        assert_eq!(c.sync, 0.0);
    }

    #[test]
    fn components_without_coalescing_counters_are_all_coalesced() {
        let m = CostModel::default();
        let mut t = MemTally::new();
        t.load(Space::Global, 42);
        let c = m.components(&t);
        assert_eq!(c.global_uncoalesced, 0.0);
        assert_eq!(c.global_coalesced, 42.0 * 400.0);
        assert_eq!(c.total(), m.cycles(&t));
    }

    #[test]
    fn component_names_cover_every_field() {
        let mut c = ComponentCharges::default();
        for (i, name) in COMPONENT_NAMES.iter().enumerate() {
            assert!(c.set(name, (i + 1) as f64), "{name}");
        }
        for (i, name) in COMPONENT_NAMES.iter().enumerate() {
            assert_eq!(c.get(name), Some((i + 1) as f64), "{name}");
        }
        assert_eq!(c.total(), (1..=7).sum::<usize>() as f64);
        assert_eq!(c.get("bogus"), None);
        assert!(!c.set("bogus", 1.0));
    }

    #[test]
    fn wall_ns_charges_one_bucket() {
        let c = ComponentCharges::from_wall_ns(1234, false);
        assert_eq!(c.compute, 1234.0);
        assert_eq!(c.total(), 1234.0);
        let s = ComponentCharges::from_wall_ns(99, true);
        assert_eq!(s.sync, 99.0);
        assert_eq!(s.memory(), 0.0);
        let both = c + s;
        assert_eq!(both.total(), 1333.0);
    }

    #[test]
    fn new_counters_sum() {
        let mut a = MemTally::new();
        a.simt_step(0b11);
        a.global_request(&[0], 4);
        let mut b = MemTally::new();
        b.simt_step(u32::MAX);
        b.simt_serialize(1);
        b.global_request(&[0, 64], 4);
        let s = a + b;
        assert_eq!(s.simt_steps, 2);
        assert_eq!(s.simt_active_lanes, 34);
        assert_eq!(s.simt_serialized, 1);
        assert_eq!(s.coalesce_requests, 2);
        assert_eq!(s.coalesce_transactions, 3);
        assert_eq!(s.coalesce_ideal, 2);
    }
}
