//! 32-lane warps and the CUDA warp-level primitives GALA's shuffle-based
//! kernel relies on.
//!
//! Primitives are modelled lane-array style: a "warp" is a set of 32 lane
//! values plus an active mask, and each primitive is a pure function over
//! those arrays with the same semantics as the CUDA intrinsic. This keeps
//! the simulated kernel code close to Algorithm 2 of the paper while staying
//! deterministic and data-race free on the host.
//!
//! Every primitive charges `warp_primitives` on its [`MemTally`]; in the
//! cost-attribution view ([`crate::memory::CostModel::components`]) those
//! charges form the `scan_sort` component of a span's cycle breakdown, so
//! shuffle-reduction and scan-heavy kernels show up as scan/sort-bound in
//! `gala profile` rather than being folded into compute.

use crate::memory::MemTally;

/// Number of lanes per warp, matching NVIDIA hardware.
pub const WARP_SIZE: usize = 32;

/// Full active mask (all 32 lanes participating).
pub const FULL_MASK: u32 = u32::MAX;

/// A warp execution context: an active-lane mask plus a tally for primitive
/// accounting. Lane *values* live in plain `[T; 32]` arrays owned by the
/// kernel (its "registers").
#[derive(Debug)]
pub struct Warp<'t> {
    active: u32,
    tally: &'t mut MemTally,
}

impl<'t> Warp<'t> {
    /// Creates a warp with the given active mask.
    pub fn new(active: u32, tally: &'t mut MemTally) -> Self {
        Self { active, tally }
    }

    /// The active-lane mask.
    #[inline]
    pub fn active(&self) -> u32 {
        self.active
    }

    /// Number of active lanes.
    #[inline]
    pub fn num_active(&self) -> u32 {
        self.active.count_ones()
    }

    /// Mutable access to the tally (for kernels counting their own loads).
    #[inline]
    pub fn tally(&mut self) -> &mut MemTally {
        self.tally
    }

    /// `__match_any_sync`: for each active lane `i`, returns the mask of
    /// active lanes whose value equals `values[i]`. Inactive lanes get 0.
    pub fn match_any_sync(&mut self, values: &[u32; WARP_SIZE]) -> [u32; WARP_SIZE] {
        self.tally.simt_step(self.active);
        self.tally.warp_primitive(1);
        let mut out = [0u32; WARP_SIZE];
        for i in 0..WARP_SIZE {
            if self.active & (1 << i) == 0 {
                continue;
            }
            let mut mask = 0u32;
            for j in 0..WARP_SIZE {
                if self.active & (1 << j) != 0 && values[j] == values[i] {
                    mask |= 1 << j;
                }
            }
            out[i] = mask;
        }
        out
    }

    /// Grouped `__reduce_add_sync`: each active lane `i` receives the sum of
    /// `values[j]` over the lanes `j` in `groups[i]` (the mask produced by
    /// [`Self::match_any_sync`]). This is how Algorithm 2 aggregates
    /// `d_C(v)` per neighboring community.
    pub fn reduce_add_grouped(
        &mut self,
        groups: &[u32; WARP_SIZE],
        values: &[f64; WARP_SIZE],
    ) -> [f64; WARP_SIZE] {
        self.tally.simt_step(self.active);
        self.tally.warp_primitive(1);
        let mut out = [0.0f64; WARP_SIZE];
        for i in 0..WARP_SIZE {
            if self.active & (1 << i) == 0 {
                continue;
            }
            let mut sum = 0.0;
            let mut m = groups[i] & self.active;
            while m != 0 {
                let j = m.trailing_zeros() as usize;
                sum += values[j];
                m &= m - 1;
            }
            out[i] = sum;
        }
        out
    }

    /// `__reduce_max_sync` over all active lanes: every active lane receives
    /// the maximum of the active values. Returns `f64::NEG_INFINITY` when no
    /// lane is active.
    pub fn reduce_max_sync(&mut self, values: &[f64; WARP_SIZE]) -> f64 {
        self.tally.simt_step(self.active);
        self.tally.warp_primitive(1);
        let mut max = f64::NEG_INFINITY;
        for (i, &v) in values.iter().enumerate() {
            if self.active & (1 << i) != 0 && v > max {
                max = v;
            }
        }
        max
    }

    /// `__reduce_min_sync` over `u32` values on active lanes, used for the
    /// deterministic min-community-id tie break. Returns `u32::MAX` when no
    /// lane is active.
    pub fn reduce_min_u32_sync(&mut self, values: &[u32; WARP_SIZE]) -> u32 {
        self.tally.simt_step(self.active);
        self.tally.warp_primitive(1);
        let mut min = u32::MAX;
        for (i, &v) in values.iter().enumerate() {
            if self.active & (1 << i) != 0 && v < min {
                min = v;
            }
        }
        min
    }

    /// `__ballot_sync`: bitmask of active lanes whose predicate is true.
    pub fn ballot_sync(&mut self, predicate: &[bool; WARP_SIZE]) -> u32 {
        self.tally.simt_step(self.active);
        self.tally.warp_primitive(1);
        let mut mask = 0u32;
        for (i, &p) in predicate.iter().enumerate() {
            if self.active & (1 << i) != 0 && p {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Evaluates a per-lane `predicate` as a warp-level branch, returning
    /// the `(taken, not_taken)` active masks. One SIMT step is recorded for
    /// the predicate evaluation; if both sides have active lanes the branch
    /// diverges and the serialized-path counter is bumped (the hardware
    /// would execute the two paths back to back under partial masks).
    pub fn branch(&mut self, predicate: &[bool; WARP_SIZE]) -> (u32, u32) {
        self.tally.simt_step(self.active);
        let mut taken = 0u32;
        for (i, &p) in predicate.iter().enumerate() {
            if self.active & (1 << i) != 0 && p {
                taken |= 1 << i;
            }
        }
        let not_taken = self.active & !taken;
        if taken != 0 && not_taken != 0 {
            self.tally.simt_serialize(1);
        }
        (taken, not_taken)
    }

    /// Runs `f` with this warp's active mask narrowed to `mask` (a subset),
    /// restoring the original mask afterwards — the simulator's analogue of
    /// executing one side of a divergent branch.
    pub fn with_mask<R>(&mut self, mask: u32, f: impl FnOnce(&mut Self) -> R) -> R {
        let saved = self.active;
        self.active = saved & mask;
        let out = f(self);
        self.active = saved;
        out
    }

    /// `__shfl_sync`: every active lane reads the value held by `src_lane`.
    /// Returns `None` if `src_lane` is inactive or out of range (undefined
    /// behaviour in CUDA; an error here).
    pub fn shfl_sync<T: Copy>(&mut self, values: &[T; WARP_SIZE], src_lane: usize) -> Option<T> {
        self.tally.simt_step(self.active);
        self.tally.warp_primitive(1);
        if src_lane >= WARP_SIZE || self.active & (1 << src_lane) == 0 {
            return None;
        }
        Some(values[src_lane])
    }
}

/// Builds a lane array from a slice shorter than or equal to the warp size,
/// returning the array (padded with `fill`) and the active mask covering the
/// populated lanes.
pub fn lanes_from_slice<T: Copy>(slice: &[T], fill: T) -> ([T; WARP_SIZE], u32) {
    assert!(slice.len() <= WARP_SIZE, "slice exceeds warp size");
    let mut lanes = [fill; WARP_SIZE];
    lanes[..slice.len()].copy_from_slice(slice);
    let active = if slice.len() == WARP_SIZE {
        FULL_MASK
    } else {
        (1u32 << slice.len()) - 1
    };
    (lanes, active)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_warp<R>(active: u32, f: impl FnOnce(&mut Warp) -> R) -> (R, MemTally) {
        let mut tally = MemTally::new();
        let r = {
            let mut w = Warp::new(active, &mut tally);
            f(&mut w)
        };
        (r, tally)
    }

    #[test]
    fn match_any_groups_equal_values() {
        let mut vals = [0u32; WARP_SIZE];
        vals[0] = 7;
        vals[1] = 9;
        vals[2] = 7;
        vals[3] = 9;
        let ((), _) = with_warp(0b1111, |w| {
            let m = w.match_any_sync(&vals);
            assert_eq!(m[0], 0b0101);
            assert_eq!(m[2], 0b0101);
            assert_eq!(m[1], 0b1010);
            assert_eq!(m[3], 0b1010);
        });
    }

    #[test]
    fn match_any_respects_active_mask() {
        let vals = [5u32; WARP_SIZE];
        let ((), _) = with_warp(0b1011, |w| {
            let m = w.match_any_sync(&vals);
            assert_eq!(m[0], 0b1011);
            assert_eq!(m[2], 0); // inactive lane
            assert_eq!(m[3], 0b1011);
        });
    }

    #[test]
    fn grouped_reduce_add_sums_per_group() {
        let mut comm = [0u32; WARP_SIZE];
        let mut w_ = [0.0f64; WARP_SIZE];
        comm[0] = 1;
        comm[1] = 2;
        comm[2] = 1;
        w_[0] = 1.5;
        w_[1] = 2.0;
        w_[2] = 0.5;
        let ((), _) = with_warp(0b111, |w| {
            let groups = w.match_any_sync(&comm);
            let sums = w.reduce_add_grouped(&groups, &w_);
            assert_eq!(sums[0], 2.0);
            assert_eq!(sums[2], 2.0);
            assert_eq!(sums[1], 2.0f64.max(2.0)); // lone group: its own value
            assert_eq!(sums[1], 2.0);
        });
    }

    #[test]
    fn reduce_max_over_active_lanes() {
        let mut vals = [f64::NEG_INFINITY; WARP_SIZE];
        vals[0] = 1.0;
        vals[1] = 99.0; // inactive, must be ignored
        vals[2] = 3.0;
        let (max, _) = with_warp(0b101, |w| w.reduce_max_sync(&vals));
        assert_eq!(max, 3.0);
    }

    #[test]
    fn reduce_max_empty_mask() {
        let vals = [1.0f64; WARP_SIZE];
        let (max, _) = with_warp(0, |w| w.reduce_max_sync(&vals));
        assert_eq!(max, f64::NEG_INFINITY);
    }

    #[test]
    fn ballot_collects_predicates() {
        let mut pred = [false; WARP_SIZE];
        pred[1] = true;
        pred[3] = true;
        pred[5] = true; // inactive
        let (mask, _) = with_warp(0b01111, |w| w.ballot_sync(&pred));
        assert_eq!(mask, 0b01010);
    }

    #[test]
    fn shfl_reads_source_lane() {
        let mut vals = [0u32; WARP_SIZE];
        vals[4] = 42;
        let (v, _) = with_warp(FULL_MASK, |w| w.shfl_sync(&vals, 4));
        assert_eq!(v, Some(42));
        let (v, _) = with_warp(0b1, |w| w.shfl_sync(&vals, 4));
        assert_eq!(v, None);
    }

    #[test]
    fn primitives_are_tallied() {
        let vals = [0u32; WARP_SIZE];
        let ((), tally) = with_warp(FULL_MASK, |w| {
            w.match_any_sync(&vals);
            w.reduce_min_u32_sync(&vals);
        });
        assert_eq!(tally.warp_primitives, 2);
    }

    #[test]
    fn lanes_from_slice_pads_and_masks() {
        let (lanes, active) = lanes_from_slice(&[1u32, 2, 3], 0);
        assert_eq!(active, 0b111);
        assert_eq!(&lanes[..4], &[1, 2, 3, 0]);
        let full: Vec<u32> = (0..32).collect();
        let (_, active) = lanes_from_slice(&full, 0);
        assert_eq!(active, FULL_MASK);
    }

    #[test]
    #[should_panic(expected = "exceeds warp size")]
    fn lanes_from_slice_rejects_oversize() {
        let big = [0u32; 33];
        lanes_from_slice(&big, 0);
    }

    #[test]
    fn primitives_record_simt_steps() {
        let vals = [0u32; WARP_SIZE];
        let ((), tally) = with_warp(0b1111, |w| {
            w.match_any_sync(&vals);
            w.reduce_min_u32_sync(&vals);
        });
        assert_eq!(tally.simt_steps, 2);
        assert_eq!(tally.simt_active_lanes, 8); // 4 active lanes x 2 steps
        assert!((tally.divergence() - (1.0 - 8.0 / 64.0)).abs() < 1e-12);
    }

    #[test]
    fn branchy_program_counts_divergence() {
        // Hand-built branchy warp program: half the lanes take the `if`
        // side, half the `else` side, then a uniform branch follows.
        let mut pred = [false; WARP_SIZE];
        for (i, p) in pred.iter_mut().enumerate() {
            *p = i % 2 == 0;
        }
        let vals = [1.0f64; WARP_SIZE];
        let ((), tally) = with_warp(FULL_MASK, |w| {
            let (taken, not_taken) = w.branch(&pred);
            assert_eq!(taken.count_ones(), 16);
            assert_eq!(not_taken.count_ones(), 16);
            // Divergent paths execute serially under partial masks.
            w.with_mask(taken, |w| {
                w.reduce_max_sync(&vals);
            });
            w.with_mask(not_taken, |w| {
                w.reduce_max_sync(&vals);
            });
            // Reconverged uniform branch: no extra serialization.
            let (t2, n2) = w.branch(&[true; WARP_SIZE]);
            assert_eq!(t2, FULL_MASK);
            assert_eq!(n2, 0);
        });
        assert_eq!(tally.simt_serialized, 1);
        // 2 branch steps at 32 lanes + 2 reduce steps at 16 lanes each.
        assert_eq!(tally.simt_steps, 4);
        assert_eq!(tally.simt_active_lanes, 32 + 32 + 16 + 16);
        assert!(tally.divergence() > 0.0);
    }

    #[test]
    fn uniform_branch_does_not_serialize() {
        let ((), tally) = with_warp(FULL_MASK, |w| {
            w.branch(&[false; WARP_SIZE]);
            w.branch(&[true; WARP_SIZE]);
        });
        assert_eq!(tally.simt_serialized, 0);
        assert_eq!(tally.simt_steps, 2);
    }

    #[test]
    fn with_mask_restores_active() {
        let ((), _) = with_warp(FULL_MASK, |w| {
            w.with_mask(0b1, |w| assert_eq!(w.num_active(), 1));
            assert_eq!(w.active(), FULL_MASK);
        });
    }
}
