//! Prefix-scan primitives and stream compaction.
//!
//! GPU graph frameworks implement the *filter* operation (paper Section
//! 3.1: "we integrate the filter operation in popular GPU graph processing
//! framework to prune inactive vertices") as an exclusive prefix sum over
//! predicate flags followed by a scatter. This module provides the
//! warp-level Hillis–Steele scan, a block-level scan built from warp scans,
//! and the [`compact`] work-list builder on top — each charged to the cost
//! model like every other simulated primitive.

use crate::memory::{MemTally, Space};
use crate::warp::{Warp, WARP_SIZE};

/// Warp-level *inclusive* prefix sum over the active lanes (Hillis–Steele,
/// `log2(32) = 5` shuffle rounds). Inactive lanes pass through unchanged.
pub fn warp_inclusive_scan(warp: &mut Warp<'_>, values: &[u64; WARP_SIZE]) -> [u64; WARP_SIZE] {
    let active = warp.active();
    let mut out = *values;
    let mut offset = 1usize;
    while offset < WARP_SIZE {
        // One shuffle round: lane i reads lane i - offset.
        warp.tally().warp_primitive(1);
        let prev = out;
        for i in 0..WARP_SIZE {
            if active & (1 << i) == 0 {
                continue;
            }
            if i >= offset && active & (1 << (i - offset)) != 0 {
                out[i] = prev[i] + prev[i - offset];
            }
        }
        offset <<= 1;
    }
    out
}

/// Exclusive prefix sum of arbitrary length, simulated as a block-per-tile
/// scan: each 32-element tile is warp-scanned, tile totals are scanned
/// recursively, and the offsets are added back. Returns `(prefixes, total)`.
///
/// Loads/stores are charged to `space` (the scan's working buffer lives in
/// shared memory inside a block, global memory across blocks).
pub fn exclusive_scan(values: &[u64], space: Space, tally: &mut MemTally) -> (Vec<u64>, u64) {
    let n = values.len();
    let mut out = vec![0u64; n];
    let mut tile_totals = Vec::with_capacity(n.div_ceil(WARP_SIZE));
    for (tile_idx, tile) in values.chunks(WARP_SIZE).enumerate() {
        tally.load(space, tile.len() as u64);
        let mut lanes = [0u64; WARP_SIZE];
        lanes[..tile.len()].copy_from_slice(tile);
        let active = if tile.len() == WARP_SIZE {
            u32::MAX
        } else {
            (1u32 << tile.len()) - 1
        };
        let mut warp = Warp::new(active, tally);
        let inclusive = warp_inclusive_scan(&mut warp, &lanes);
        let base = tile_idx * WARP_SIZE;
        for i in 0..tile.len() {
            // Exclusive = inclusive shifted right by one element.
            out[base + i] = if i == 0 { 0 } else { inclusive[i - 1] };
        }
        tile_totals.push(if tile.is_empty() {
            0
        } else {
            inclusive[tile.len() - 1]
        });
        tally.store(space, tile.len() as u64);
    }
    // Scan the tile totals (recursively for > 32 tiles).
    let (tile_offsets, total) = if tile_totals.len() <= 1 {
        (
            vec![0u64; tile_totals.len()],
            tile_totals.first().copied().unwrap_or(0),
        )
    } else {
        exclusive_scan(&tile_totals, space, tally)
    };
    for (tile_idx, &offset) in tile_offsets.iter().enumerate() {
        if offset == 0 {
            continue;
        }
        let base = tile_idx * WARP_SIZE;
        let end = (base + WARP_SIZE).min(n);
        for x in &mut out[base..end] {
            *x += offset;
        }
    }
    (out, total)
}

/// Stream compaction: the indices whose flag is set, built with an
/// exclusive scan + scatter — the GPU framework "filter" that turns the
/// pruning classification into a dense work list.
pub fn compact(flags: &[bool], tally: &mut MemTally) -> Vec<u32> {
    let ones: Vec<u64> = flags.iter().map(|&f| f as u64).collect();
    let (prefixes, total) = exclusive_scan(&ones, Space::Global, tally);
    let mut out = vec![0u32; total as usize];
    for (i, &f) in flags.iter().enumerate() {
        if f {
            out[prefixes[i] as usize] = i as u32;
            tally.store(Space::Global, 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::FULL_MASK;

    #[test]
    fn warp_scan_matches_scalar() {
        let mut tally = MemTally::new();
        let values: [u64; WARP_SIZE] = std::array::from_fn(|i| (i as u64 * 7 + 3) % 11);
        let mut warp = Warp::new(FULL_MASK, &mut tally);
        let scanned = warp_inclusive_scan(&mut warp, &values);
        let mut acc = 0u64;
        for i in 0..WARP_SIZE {
            acc += values[i];
            assert_eq!(scanned[i], acc, "lane {i}");
        }
    }

    #[test]
    fn warp_scan_partial_mask() {
        let mut tally = MemTally::new();
        let values: [u64; WARP_SIZE] = std::array::from_fn(|i| i as u64);
        let mut warp = Warp::new(0b1111, &mut tally);
        let scanned = warp_inclusive_scan(&mut warp, &values);
        assert_eq!(&scanned[..4], &[0, 1, 3, 6]);
    }

    #[test]
    fn exclusive_scan_matches_scalar_across_tiles() {
        let mut tally = MemTally::new();
        let values: Vec<u64> = (0..1000).map(|i| (i * 13 + 5) % 17).collect();
        let (prefixes, total) = exclusive_scan(&values, Space::Global, &mut tally);
        let mut acc = 0u64;
        for i in 0..values.len() {
            assert_eq!(prefixes[i], acc, "index {i}");
            acc += values[i];
        }
        assert_eq!(total, acc);
        assert!(tally.warp_primitives > 0);
    }

    #[test]
    fn exclusive_scan_empty_and_single() {
        let mut tally = MemTally::new();
        let (p, t) = exclusive_scan(&[], Space::Shared, &mut tally);
        assert!(p.is_empty());
        assert_eq!(t, 0);
        let (p, t) = exclusive_scan(&[42], Space::Shared, &mut tally);
        assert_eq!(p, vec![0]);
        assert_eq!(t, 42);
    }

    #[test]
    fn compact_builds_the_work_list() {
        let mut tally = MemTally::new();
        let flags: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let list = compact(&flags, &mut tally);
        let expected: Vec<u32> = (0..100).filter(|i| i % 3 == 0).collect();
        assert_eq!(list, expected);
    }

    #[test]
    fn compact_all_and_none() {
        let mut tally = MemTally::new();
        assert_eq!(compact(&[true; 5], &mut tally), vec![0, 1, 2, 3, 4]);
        assert!(compact(&[false; 5], &mut tally).is_empty());
        assert!(compact(&[], &mut tally).is_empty());
    }
}
