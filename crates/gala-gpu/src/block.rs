//! Thread blocks and the byte-budgeted shared-memory arena.
//!
//! A simulated block processes one work item (in GALA, one large-degree
//! vertex) with `block_size` logical threads. Shared memory is a scarce
//! per-block resource on real GPUs (48–164 KiB on A100); [`SharedMem`]
//! enforces that budget so a kernel cannot "cheat" by placing more state in
//! the fast level than the hardware would allow — which is exactly the
//! pressure the hierarchical hashtable (paper Section 4.2) is designed for.

/// Default shared-memory budget per block, in bytes (A100 default carve-out).
pub const DEFAULT_SHARED_BYTES: usize = 48 * 1024;

/// Default number of threads per block.
pub const DEFAULT_BLOCK_SIZE: usize = 128;

/// A per-block shared-memory arena with a hard byte budget.
///
/// Allocation hands out plain `Vec<T>` storage (the host stand-in for an
/// `extern __shared__` region) while debiting the budget; exceeding it
/// returns `None`, forcing the kernel to spill to global memory just like
/// real hardware would force a smaller occupancy or an overflow structure.
#[derive(Debug)]
pub struct SharedMem {
    capacity: usize,
    used: usize,
}

impl SharedMem {
    /// Creates an arena with the given byte budget.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            capacity: capacity_bytes,
            used: 0,
        }
    }

    /// Creates an arena with the default 48 KiB budget.
    pub fn default_budget() -> Self {
        Self::new(DEFAULT_SHARED_BYTES)
    }

    /// Bytes still available.
    pub fn remaining(&self) -> usize {
        self.capacity - self.used
    }

    /// Bytes allocated so far.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Total budget in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocates `len` elements of `T` if the budget allows, else `None`.
    pub fn try_alloc<T: Clone + Default>(&mut self, len: usize) -> Option<Vec<T>> {
        let bytes = len.checked_mul(std::mem::size_of::<T>())?;
        if bytes > self.remaining() {
            return None;
        }
        self.used += bytes;
        Some(vec![T::default(); len])
    }

    /// Maximum number of `T` elements that still fit.
    pub fn max_elems<T>(&self) -> usize {
        if std::mem::size_of::<T>() == 0 {
            usize::MAX
        } else {
            self.remaining() / std::mem::size_of::<T>()
        }
    }
}

/// Static configuration of a simulated block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockConfig {
    /// Logical threads per block.
    pub block_size: usize,
    /// Shared-memory budget per block in bytes.
    pub shared_bytes: usize,
}

impl Default for BlockConfig {
    fn default() -> Self {
        Self {
            block_size: DEFAULT_BLOCK_SIZE,
            shared_bytes: DEFAULT_SHARED_BYTES,
        }
    }
}

impl BlockConfig {
    /// Number of warps this block schedules (`block_size` rounded up to
    /// whole warps) — the unit divergence and coalescing counters are
    /// attributed at.
    pub fn warps(&self) -> usize {
        self.block_size.div_ceil(crate::warp::WARP_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_enforced() {
        let mut sm = SharedMem::new(64);
        let a: Option<Vec<u64>> = sm.try_alloc(4); // 32 bytes
        assert!(a.is_some());
        assert_eq!(sm.remaining(), 32);
        let b: Option<Vec<u64>> = sm.try_alloc(5); // 40 bytes > 32
        assert!(b.is_none());
        let c: Option<Vec<u64>> = sm.try_alloc(4);
        assert!(c.is_some());
        assert_eq!(sm.remaining(), 0);
    }

    #[test]
    fn max_elems_tracks_remaining() {
        let mut sm = SharedMem::new(100);
        assert_eq!(sm.max_elems::<u32>(), 25);
        let _: Vec<u32> = sm.try_alloc(10).unwrap();
        assert_eq!(sm.max_elems::<u32>(), 15);
    }

    #[test]
    fn default_budget_is_48k() {
        let sm = SharedMem::default_budget();
        assert_eq!(sm.capacity(), 48 * 1024);
    }

    #[test]
    fn zero_len_alloc_is_free() {
        let mut sm = SharedMem::new(0);
        let v: Option<Vec<u8>> = sm.try_alloc(0);
        assert!(v.is_some());
    }

    #[test]
    fn block_warp_count_rounds_up() {
        assert_eq!(BlockConfig::default().warps(), 4);
        let odd = BlockConfig {
            block_size: 33,
            ..BlockConfig::default()
        };
        assert_eq!(odd.warps(), 2);
    }
}
