//! Device atomics with access accounting.
//!
//! Within one simulated block the logical threads execute in a fixed order,
//! so atomics are trivially linearisable; what matters for the reproduction
//! is that each `atomicCAS` / `atomicAdd` is *counted* against the right
//! memory space, because atomics on global memory are the dominant cost the
//! hierarchical hashtable avoids. For genuinely concurrent host-side
//! accumulation (e.g. applying moves across rayon workers) this module also
//! provides [`AtomicF64Cell`], a CAS-loop `f64` add on `AtomicU64`.

use crate::memory::{MemTally, Space};
use std::sync::atomic::{AtomicU64, Ordering};

/// `atomicCAS` on a `u32` slot: writes `val` iff the current value equals
/// `compare`; returns the value observed before the operation.
#[inline]
pub fn atomic_cas_u32(
    mem: &mut [u32],
    idx: usize,
    compare: u32,
    val: u32,
    space: Space,
    tally: &mut MemTally,
) -> u32 {
    tally.atomic(space, 1);
    let old = mem[idx];
    if old == compare {
        mem[idx] = val;
    }
    old
}

/// `atomicAdd` on an `f64` slot; returns the value before the add.
#[inline]
pub fn atomic_add_f64(
    mem: &mut [f64],
    idx: usize,
    val: f64,
    space: Space,
    tally: &mut MemTally,
) -> f64 {
    tally.atomic(space, 1);
    let old = mem[idx];
    mem[idx] = old + val;
    old
}

/// `atomicAdd` on a `u64` counter; returns the value before the add.
#[inline]
pub fn atomic_add_u64(
    mem: &mut [u64],
    idx: usize,
    val: u64,
    space: Space,
    tally: &mut MemTally,
) -> u64 {
    tally.atomic(space, 1);
    let old = mem[idx];
    mem[idx] = old + val;
    old
}

/// A lock-free `f64` accumulator usable from many host threads at once,
/// mirroring CUDA's `atomicAdd(double*)` (which compiles to a CAS loop on
/// pre-Pascal hardware and is the textbook pattern in Rust).
#[derive(Debug, Default)]
pub struct AtomicF64Cell {
    bits: AtomicU64,
}

impl AtomicF64Cell {
    /// Creates a cell holding `value`.
    pub fn new(value: f64) -> Self {
        Self {
            bits: AtomicU64::new(value.to_bits()),
        }
    }

    /// Current value.
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Atomically adds `delta`, returning the previous value.
    pub fn fetch_add(&self, delta: f64) -> f64 {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(old) => return f64::from_bits(old),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Stores `value` unconditionally.
    pub fn store(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_success_and_failure() {
        let mut mem = vec![0u32, 5];
        let mut t = MemTally::new();
        assert_eq!(atomic_cas_u32(&mut mem, 0, 0, 9, Space::Shared, &mut t), 0);
        assert_eq!(mem[0], 9);
        assert_eq!(atomic_cas_u32(&mut mem, 1, 0, 9, Space::Global, &mut t), 5);
        assert_eq!(mem[1], 5); // unchanged on mismatch
        assert_eq!(t.shared_atomics, 1);
        assert_eq!(t.global_atomics, 1);
    }

    #[test]
    fn add_returns_previous() {
        let mut mem = vec![1.5f64];
        let mut t = MemTally::new();
        assert_eq!(atomic_add_f64(&mut mem, 0, 2.0, Space::Shared, &mut t), 1.5);
        assert_eq!(mem[0], 3.5);
    }

    #[test]
    fn atomic_f64_cell_concurrent_sum() {
        use std::sync::Arc;
        let cell = Arc::new(AtomicF64Cell::new(0.0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.fetch_add(0.5);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(cell.load(), 4000.0);
    }

    #[test]
    fn atomic_f64_cell_store_load() {
        let c = AtomicF64Cell::new(1.0);
        c.store(-2.25);
        assert_eq!(c.load(), -2.25);
    }
}
