//! Profiling scopes: named spans that attribute memory traffic and
//! simulated cycles to phases of a run.
//!
//! Kernels and drivers already count every access into a [`MemTally`]; this
//! module adds *where it happened*. A [`Profiler`] maintains a stack of
//! named spans — entering a span nests it under the current one, and on
//! exit the span folds into its parent, merging with any earlier sibling of
//! the same name. The result is a deterministic tree of [`SpanRecord`]s:
//! per-span tallies, invocation counts, free-form named counters (hashtable
//! occupancy, evictions, pruned vertices, …) and, via a
//! [`CostModel`](crate::memory::CostModel), simulated-cycle attribution.
//!
//! Profiling is opt-in. A profiler built with [`Profiler::disabled`] turns
//! every method into an early-returning no-op so instrumented hot paths pay
//! only a branch on a bool when profiling is off.

use std::collections::BTreeMap;
use std::fmt;

use crate::memory::{ComponentCharges, CostModel, MemTally};

/// One node in the span tree: a named scope with its accumulated costs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanRecord {
    /// Span name (phase or kernel name, e.g. `"decide"`).
    pub name: String,
    /// How many times this span was entered (merged across siblings).
    pub invocations: u64,
    /// Memory traffic recorded directly in this span (children excluded).
    pub tally: MemTally,
    /// Free-form named counters (occupancy, evictions, item counts, …).
    pub counters: BTreeMap<String, u64>,
    /// Nested spans, in first-entered order.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            ..Self::default()
        }
    }

    /// This span's tally plus every descendant's, summed.
    pub fn total_tally(&self) -> MemTally {
        self.children
            .iter()
            .fold(self.tally, |acc, c| acc + c.total_tally())
    }

    /// Simulated cycles for traffic recorded directly in this span.
    pub fn self_cycles(&self, cost: &CostModel) -> f64 {
        cost.cycles(&self.tally)
    }

    /// Simulated cycles for this span including all descendants.
    pub fn total_cycles(&self, cost: &CostModel) -> f64 {
        cost.cycles(&self.total_tally())
    }

    /// Per-component decomposition of the traffic recorded directly in
    /// this span (children excluded), under `cost`. With the default
    /// integer-weight model, `components(c).total() == self_cycles(c)`
    /// bit-for-bit — see [`CostModel::components`].
    pub fn components(&self, cost: &CostModel) -> ComponentCharges {
        cost.components(&self.tally)
    }

    /// Wall-clock decomposition for native spans: the span's
    /// `"elapsed_ns"` counter charged whole to one bucket (`sync` for
    /// spans named `"sync"`, `compute` otherwise). Zero when the span
    /// carries no wall counter — native kernel child spans only count
    /// items, their parent scope owns the time.
    pub fn components_wall(&self) -> ComponentCharges {
        ComponentCharges::from_wall_ns(self.counter("elapsed_ns"), self.name == "sync")
    }

    /// Looks up a direct child span by name.
    pub fn child(&self, name: &str) -> Option<&SpanRecord> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Value of a named counter, zero when never counted.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Folds `other` into `self`: tallies and counters add, children merge
    /// recursively by name (first-entered order is kept).
    fn merge(&mut self, other: SpanRecord) {
        debug_assert_eq!(self.name, other.name);
        self.invocations += other.invocations;
        self.tally += other.tally;
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for child in other.children {
            match self.children.iter_mut().find(|c| c.name == child.name) {
                Some(mine) => mine.merge(child),
                None => self.children.push(child),
            }
        }
    }

    fn render(&self, cost: &CostModel, depth: usize, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            out,
            "{:indent$}{}  x{}  {:.0} cycles ({:.0} self)",
            "",
            if self.name.is_empty() {
                "<root>"
            } else {
                &self.name
            },
            self.invocations,
            self.total_cycles(cost),
            self.self_cycles(cost),
            indent = depth * 2,
        )?;
        for c in &self.children {
            c.render(cost, depth + 1, out)?;
        }
        Ok(())
    }

    /// Human-readable tree rendering under `cost` (debugging aid; the
    /// machine-readable form lives in `gala-telemetry`).
    pub fn display<'a>(&'a self, cost: &'a CostModel) -> impl fmt::Display + 'a {
        struct D<'a>(&'a SpanRecord, &'a CostModel);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.render(self.1, 0, f)
            }
        }
        D(self, cost)
    }
}

/// Collector for a tree of profiling spans.
///
/// ```
/// use gala_gpu::memory::{MemTally, Space};
/// use gala_gpu::profile::Profiler;
///
/// let mut prof = Profiler::new();
/// prof.scope("decide", |p| {
///     let mut t = MemTally::new();
///     t.load(Space::Global, 4);
///     p.record(&t);
///     p.count("moved", 2);
/// });
/// let root = prof.finish();
/// assert_eq!(root.child("decide").unwrap().counter("moved"), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Profiler {
    enabled: bool,
    /// `stack[0]` is the root; open spans are stacked above it.
    stack: Vec<SpanRecord>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// An enabled profiler with an empty root span.
    pub fn new() -> Self {
        Self {
            enabled: true,
            stack: vec![SpanRecord::new("")],
        }
    }

    /// A profiler whose every method is a no-op (the zero-cost default for
    /// production paths).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            stack: Vec::new(),
        }
    }

    /// Whether this profiler records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span named `name`, nested under the current one.
    pub fn enter(&mut self, name: &str) {
        if !self.enabled {
            return;
        }
        let mut span = SpanRecord::new(name);
        span.invocations = 1;
        self.stack.push(span);
    }

    /// Closes the current span, folding it into its parent (merging with a
    /// same-named sibling if one exists).
    ///
    /// # Panics
    ///
    /// Panics on an enabled profiler with no open span.
    pub fn exit(&mut self) {
        if !self.enabled {
            return;
        }
        assert!(self.stack.len() > 1, "Profiler::exit without a span open");
        let span = self.stack.pop().expect("span stack underflow");
        let parent = self.stack.last_mut().expect("root span missing");
        match parent.children.iter_mut().find(|c| c.name == span.name) {
            Some(mine) => mine.merge(span),
            None => parent.children.push(span),
        }
    }

    /// Runs `f` inside a span named `name` (paired [`Self::enter`] /
    /// [`Self::exit`]).
    pub fn scope<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        self.enter(name);
        let out = f(self);
        self.exit();
        out
    }

    /// Adds `tally` to the current span's memory traffic.
    pub fn record(&mut self, tally: &MemTally) {
        if !self.enabled {
            return;
        }
        let top = self.stack.last_mut().expect("root span missing");
        top.tally += *tally;
    }

    /// Folds a finished span tree (the root returned by [`Self::finish`])
    /// into the current span: the root's tally and counters add to the
    /// current span, its children merge by name. This lets drivers profile
    /// a superstep with a private sub-profiler, emit the fresh tree as a
    /// trace event, and still accumulate it into the run-level tree.
    pub fn absorb(&mut self, root: SpanRecord) {
        if !self.enabled {
            return;
        }
        let top = self.stack.last_mut().expect("root span missing");
        top.tally += root.tally;
        for (k, v) in root.counters {
            *top.counters.entry(k).or_insert(0) += v;
        }
        for child in root.children {
            match top.children.iter_mut().find(|c| c.name == child.name) {
                Some(mine) => mine.merge(child),
                None => top.children.push(child),
            }
        }
    }

    /// Adds `n` to the named counter of the current span.
    pub fn count(&mut self, key: &str, n: u64) {
        if !self.enabled {
            return;
        }
        let top = self.stack.last_mut().expect("root span missing");
        *top.counters.entry(key.to_string()).or_insert(0) += n;
    }

    /// Closes any spans still open and returns the root of the span tree.
    ///
    /// A disabled profiler returns an empty root (zero invocations, no
    /// children) so callers can serialise unconditionally.
    pub fn finish(mut self) -> SpanRecord {
        if !self.enabled {
            return SpanRecord::new("");
        }
        while self.stack.len() > 1 {
            self.exit();
        }
        self.stack.pop().expect("root span missing")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Space;

    fn tally(global_loads: u64) -> MemTally {
        let mut t = MemTally::new();
        t.load(Space::Global, global_loads);
        t
    }

    #[test]
    fn spans_nest_and_merge_by_name() {
        let mut p = Profiler::new();
        for _ in 0..3 {
            p.scope("superstep", |p| {
                p.scope("decide", |p| p.record(&tally(10)));
                p.scope("apply", |p| p.record(&tally(1)));
            });
        }
        let root = p.finish();
        let step = root.child("superstep").unwrap();
        assert_eq!(step.invocations, 3);
        assert_eq!(step.children.len(), 2);
        assert_eq!(step.child("decide").unwrap().tally.global_loads, 30);
        assert_eq!(step.child("apply").unwrap().tally.global_loads, 3);
    }

    #[test]
    fn total_tally_includes_descendants() {
        let mut p = Profiler::new();
        p.scope("outer", |p| {
            p.record(&tally(5));
            p.scope("inner", |p| p.record(&tally(7)));
        });
        let root = p.finish();
        let outer = root.child("outer").unwrap();
        assert_eq!(outer.tally.global_loads, 5);
        assert_eq!(outer.total_tally().global_loads, 12);
        let cost = CostModel::default();
        assert!(outer.total_cycles(&cost) > outer.self_cycles(&cost));
    }

    #[test]
    fn counters_accumulate() {
        let mut p = Profiler::new();
        p.scope("decide", |p| p.count("moved", 4));
        p.scope("decide", |p| p.count("moved", 2));
        let root = p.finish();
        assert_eq!(root.child("decide").unwrap().counter("moved"), 6);
        assert_eq!(root.child("decide").unwrap().counter("absent"), 0);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::disabled();
        assert!(!p.is_enabled());
        p.enter("x");
        p.record(&tally(100));
        p.count("moved", 9);
        p.exit();
        p.exit(); // no panic when disabled
        let root = p.finish();
        assert_eq!(root, SpanRecord::new(""));
    }

    #[test]
    fn finish_closes_open_spans() {
        let mut p = Profiler::new();
        p.enter("a");
        p.enter("b");
        p.record(&tally(1));
        let root = p.finish();
        assert_eq!(root.child("a").unwrap().child("b").unwrap().tally, tally(1));
    }

    #[test]
    #[should_panic(expected = "without a span open")]
    fn exit_without_enter_panics() {
        Profiler::new().exit();
    }

    #[test]
    fn absorb_merges_sub_profiler_trees() {
        let mut run = Profiler::new();
        run.scope("superstep", |run| {
            for loads in [2u64, 5] {
                let mut sub = Profiler::new();
                sub.scope("decide", |p| {
                    p.record(&tally(loads));
                    p.count("items", loads);
                });
                run.absorb(sub.finish());
            }
        });
        let root = run.finish();
        let step = root.child("superstep").unwrap();
        let decide = step.child("decide").unwrap();
        assert_eq!(decide.tally.global_loads, 7);
        assert_eq!(decide.counter("items"), 7);
        assert_eq!(decide.invocations, 2);
    }

    #[test]
    fn absorb_on_disabled_profiler_is_noop() {
        let mut p = Profiler::disabled();
        let mut sub = Profiler::new();
        sub.scope("decide", |p| p.record(&tally(3)));
        p.absorb(sub.finish());
        assert_eq!(p.finish(), SpanRecord::new(""));
    }

    #[test]
    fn span_components_sum_to_self_cycles_and_survive_merging() {
        let cost = CostModel::default();
        let mut p = Profiler::new();
        for loads in [3u64, 9, 27] {
            p.scope("decide", |p| {
                let mut t = tally(loads);
                t.warp_primitive(loads);
                t.atomic(Space::Shared, 1);
                p.record(&t);
            });
        }
        let root = p.finish();
        let decide = root.child("decide").unwrap();
        let c = decide.components(&cost);
        assert_eq!(c.total(), decide.self_cycles(&cost));
        assert_eq!(c.global_coalesced, 39.0 * 400.0);
        assert_eq!(c.scan_sort, 39.0 * 8.0);
        assert_eq!(c.atomics, 3.0 * 40.0);
        assert_eq!(c.sync, 0.0);
    }

    #[test]
    fn wall_components_read_the_elapsed_counter() {
        let mut p = Profiler::new();
        p.scope("decide", |p| p.count("elapsed_ns", 500));
        p.scope("sync", |p| p.count("elapsed_ns", 70));
        p.scope("apply", |_| {});
        let root = p.finish();
        assert_eq!(
            root.child("decide").unwrap().components_wall().compute,
            500.0
        );
        assert_eq!(root.child("sync").unwrap().components_wall().sync, 70.0);
        assert_eq!(
            root.child("apply").unwrap().components_wall(),
            ComponentCharges::default()
        );
    }

    #[test]
    fn display_renders_tree() {
        let mut p = Profiler::new();
        p.scope("decide", |p| p.record(&tally(2)));
        let root = p.finish();
        let cost = CostModel::default();
        let text = root.display(&cost).to_string();
        assert!(text.contains("<root>"));
        assert!(text.contains("decide"));
    }
}
