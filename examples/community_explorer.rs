//! Community exploration workflow: build the full dendrogram, pick a level,
//! drill into one community with induced subgraphs, and characterise it
//! with clustering / conductance — the "downstream user" workflow the
//! library is meant to serve.
//!
//! ```sh
//! cargo run --release --example community_explorer
//! ```

use gala::core::hierarchy::Dendrogram;
use gala::core::louvain::LouvainConfig;
use gala::core::validation::conductance;
use gala::graph::clustering::average_clustering;
use gala::graph::generators::sbm::PowerLawSbm;
use gala::graph::subgraph::community_subgraph;
use gala::graph::traversal::connected_components;

fn main() {
    let gt = PowerLawSbm {
        num_vertices: 10_000,
        min_community: 20,
        max_community: 500,
        size_exponent: 2.0,
        internal_degree: 9.0,
        mixing: 0.15,
    }
    .generate(21);
    let graph = gt.graph;
    println!(
        "graph: {} vertices, {} edges, avg clustering {:.3}\n",
        graph.num_vertices(),
        graph.num_edges(),
        average_clustering(&graph)
    );

    // 1. The full hierarchy, not just the final cut.
    let dendrogram = Dendrogram::build(&graph, LouvainConfig::default());
    println!("dendrogram levels:");
    for lvl in 0..dendrogram.num_levels() {
        println!(
            "  level {lvl}: {:>5} communities, Q = {:.4}",
            dendrogram.level(lvl).num_communities(),
            dendrogram.modularity_at(lvl)
        );
    }

    // 2. Pick the final level and drill into its largest community.
    let partition = dendrogram.final_partition();
    let (ids, members) = partition.groups();
    let (largest_id, largest) = ids
        .iter()
        .zip(&members)
        .max_by_key(|(_, m)| m.len())
        .expect("nonempty graph");
    println!(
        "\nlargest community: id {largest_id}, {} members, conductance {:.4}",
        largest.len(),
        conductance(&graph, partition, *largest_id).unwrap()
    );

    // 3. The community as a standalone graph.
    let sub = community_subgraph(&graph, partition, *largest_id);
    let (_, pieces) = connected_components(&sub.graph);
    println!(
        "  induced subgraph: {} edges, {} connected piece(s), clustering {:.3}",
        sub.graph.num_edges(),
        pieces,
        average_clustering(&sub.graph)
    );
    assert_eq!(sub.graph.num_vertices(), largest.len());
}
