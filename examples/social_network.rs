//! Community detection on a synthetic social network with known ground
//! truth: generate a power-law SBM (the LiveJournal stand-in personality),
//! run GALA under several pruning strategies, and compare quality (Q, NMI)
//! and work (active vertices processed).
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use gala::core::louvain::{Louvain, LouvainConfig};
use gala::core::metrics::nmi;
use gala::core::pruning::PruningKind;
use gala::graph::generators::sbm::PowerLawSbm;

fn main() {
    let gt = PowerLawSbm {
        num_vertices: 20_000,
        min_community: 15,
        max_community: 800,
        size_exponent: 2.0,
        internal_degree: 10.0,
        mixing: 0.25,
    }
    .generate(7);
    println!(
        "social network: {} vertices, {} edges, {} planted communities\n",
        gt.graph.num_vertices(),
        gt.graph.num_edges(),
        gt.ground_truth.num_communities()
    );

    for kind in [
        PruningKind::None,
        PruningKind::Gain,
        PruningKind::Relaxed,
        PruningKind::GainRelaxed,
    ] {
        let result = Louvain::new(LouvainConfig {
            pruning: kind,
            ..LouvainConfig::default()
        })
        .run(&gt.graph);
        let processed: usize = result
            .rounds
            .iter()
            .flat_map(|r| r.iterations.iter())
            .map(|i| i.num_active)
            .sum();
        println!(
            "{:<9} Q = {:.5}  NMI = {:.4}  communities = {:>5}  vertices processed = {}",
            kind.label(),
            result.modularity,
            nmi(&result.partition, &gt.ground_truth),
            result.partition.num_communities(),
            processed
        );
    }
    println!(
        "\nexpect: MG matches the baseline's Q exactly while processing fewer \
         vertices; RM processes the fewest but may lose a little Q."
    );
}
