//! The resolution limit, and the adjustable-resolution extension: classic
//! modularity (γ = 1) cannot separate small communities in large networks
//! (paper Section 1, limitation 1); sweeping γ shows the ring-of-cliques
//! fixture snapping from merged pairs to one-community-per-clique.
//!
//! ```sh
//! cargo run --release --example resolution
//! ```

use gala::core::louvain::{Louvain, LouvainConfig};
use gala::core::metrics::nmi;
use gala::prelude::fixtures;

fn main() {
    let cliques = 30;
    let size = 4;
    let graph = fixtures::ring_of_cliques(cliques, size);
    let truth = fixtures::ring_of_cliques_truth(cliques, size);
    println!(
        "ring of {cliques} cliques of {size} ({} vertices, {} edges)\n",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "{:<6} {:>12} {:>10} {:>8}",
        "gamma", "communities", "Q_gamma", "NMI"
    );
    for gamma in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let result = Louvain::new(LouvainConfig {
            resolution: gamma,
            ..LouvainConfig::default()
        })
        .run(&graph);
        println!(
            "{gamma:<6} {:>12} {:>10.4} {:>8.3}",
            result.partition.num_communities(),
            result.modularity,
            nmi(&result.partition, &truth)
        );
    }
    println!(
        "\nexpect: low γ merges adjacent cliques (the resolution limit); \
         γ ≥ 2 recovers all {cliques} cliques with NMI = 1."
    );
}
