//! Spatially embedded networks (the paper's transportation-analysis
//! motivation): generate a random geometric graph, detect communities, and
//! check they are geographically coherent — members of a community should
//! be much closer to their community's centroid than random nodes are.
//!
//! ```sh
//! cargo run --release --example spatial_transport
//! ```

use gala::core::louvain::{Louvain, LouvainConfig};
use gala::graph::generators::geometric::geometric_weighted;

fn main() {
    let g = geometric_weighted(6_000, 0.025, 42);
    println!(
        "geometric network: {} nodes, {} links\n",
        g.graph.num_vertices(),
        g.graph.num_edges()
    );
    let result = Louvain::new(LouvainConfig::default()).run(&g.graph);
    println!(
        "Q = {:.4}, {} communities",
        result.modularity,
        result.partition.num_communities()
    );

    // Geographic coherence: mean distance to own community centroid vs the
    // global mean pairwise spread.
    let (ids, members) = result.partition.groups();
    let mut within = 0.0f64;
    let mut count = 0usize;
    for (_, vs) in ids.iter().zip(&members) {
        if vs.len() < 2 {
            continue;
        }
        let (cx, cy) = vs.iter().fold((0.0, 0.0), |(x, y), &v| {
            let (px, py) = g.positions[v as usize];
            (x + px, y + py)
        });
        let (cx, cy) = (cx / vs.len() as f64, cy / vs.len() as f64);
        for &v in vs {
            let (px, py) = g.positions[v as usize];
            within += ((px - cx).powi(2) + (py - cy).powi(2)).sqrt();
            count += 1;
        }
    }
    let within = within / count as f64;
    // Reference: expected distance of a uniform point to the square's
    // centre is ~0.3826.
    println!("mean distance to community centroid: {within:.4} (uniform reference ~0.38)");
    assert!(
        within < 0.1,
        "communities should be spatially tight, got {within}"
    );
    println!("communities are geographically coherent.");
}
