//! The classic: Zachary's karate club. Runs GALA and the sequential
//! baseline, prints the detected communities, and measures agreement with
//! the real-world two-faction split.
//!
//! ```sh
//! cargo run --release --example karate
//! ```

use gala::core::metrics::nmi;
use gala::core::sequential::{sequential_louvain, SequentialConfig};
use gala::prelude::*;

fn main() {
    let graph = fixtures::karate_club();
    let factions = fixtures::karate_club_factions();

    let gala = Louvain::new(LouvainConfig::default()).run(&graph);
    let seq = sequential_louvain(&graph, SequentialConfig::default());

    println!("karate club: 34 members, 78 friendships\n");
    println!(
        "GALA:       Q = {:.4}, {} communities, NMI vs factions = {:.3}",
        gala.modularity,
        gala.partition.num_communities(),
        nmi(&gala.partition, &factions)
    );
    println!(
        "sequential: Q = {:.4}, {} communities, NMI vs factions = {:.3}",
        seq.modularity,
        seq.partition.num_communities(),
        nmi(&seq.partition, &factions)
    );

    let (ids, members) = gala.partition.groups();
    println!("\nGALA's communities:");
    for (id, vs) in ids.iter().zip(&members) {
        println!("  {id}: {vs:?}");
    }
    println!("\n(the published Louvain result on karate is Q ≈ 0.41 with 4 communities)");
}
