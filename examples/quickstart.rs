//! Quickstart: build a graph, run GALA Louvain, inspect the communities.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gala::prelude::*;

fn main() {
    // A toy social graph: two groups of friends joined by one acquaintance.
    let mut builder = GraphBuilder::new(8);
    for (u, v) in [(0, 1), (0, 2), (1, 2), (2, 3), (1, 3)] {
        builder.add_edge(u, v, 1.0);
    }
    for (u, v) in [(4, 5), (4, 6), (5, 6), (6, 7), (5, 7)] {
        builder.add_edge(u, v, 1.0);
    }
    builder.add_edge(3, 4, 0.5); // weak bridge
    let graph = builder.build();

    // Default config = the full GALA system: MG pruning, workload-aware
    // kernels with the hierarchical hashtable, delta weight maintenance.
    let result = Louvain::new(LouvainConfig::default()).run(&graph);

    println!("modularity: {:.4}", result.modularity);
    println!("communities: {}", result.partition.num_communities());
    let (ids, members) = result.partition.groups();
    for (id, vs) in ids.iter().zip(&members) {
        println!("  community {id}: {vs:?}");
    }
    println!(
        "supersteps: {} across {} hierarchy rounds",
        result.num_iterations(),
        result.rounds.len()
    );

    // The simulated-GPU accounting is available too:
    let tally = result.total_tally();
    println!(
        "simulated accesses — global: {}, shared: {}, warp primitives: {}",
        tally.global_total(),
        tally.shared_total(),
        tally.warp_primitives
    );

    assert_eq!(result.partition.num_communities(), 2);
}
