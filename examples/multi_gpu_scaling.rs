//! Multi-GPU scaling demo: run phase 1 of GALA on 1–8 simulated devices and
//! watch the compute/communication trade-off and the adaptive dense→sparse
//! synchronisation switch (paper Section 4.3, Figure 10).
//!
//! ```sh
//! cargo run --release --example multi_gpu_scaling
//! ```

use gala::core::multi_gpu::{run_phase1, MultiGpuConfig, SyncMode};
use gala::prelude::{Dataset, Scale};

fn main() {
    let graph = Dataset::OR.generate(Scale::Test);
    println!(
        "orkut stand-in: {} vertices, {} edges\n",
        graph.num_vertices(),
        graph.num_edges()
    );
    let mut base_total = 0.0;
    for devices in [1usize, 2, 4, 8] {
        let r = run_phase1(
            &graph,
            MultiGpuConfig {
                num_devices: devices,
                sync: SyncMode::Adaptive,
                ..MultiGpuConfig::default()
            },
        );
        if devices == 1 {
            base_total = r.total_us();
        }
        let sparse_iters = r
            .iterations
            .iter()
            .filter(|i| i.sync_used == SyncMode::Sparse)
            .count();
        println!(
            "{devices} device(s): compute {:>8.0} us, comm {:>7.0} us, total {:>8.0} us, \
             speedup {:.2}x, sparse sync in {}/{} iterations, Q = {:.5}",
            r.compute_us(),
            r.comm_us(),
            r.total_us(),
            base_total / r.total_us(),
            sparse_iters,
            r.iterations.len(),
            r.modularity
        );
    }
    println!(
        "\nexpect: compute shrinks with devices, communication does not — the \
         paper's sublinear 2.5x average speedup at 8 GPUs."
    );
}
