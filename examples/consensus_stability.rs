//! Consensus clustering demo: on a noisy graph, individual (relabelled)
//! GALA runs disagree; the consensus procedure extracts the stable core.
//!
//! ```sh
//! cargo run --release --example consensus_stability
//! ```

use gala::core::consensus::{consensus, ConsensusConfig};
use gala::core::louvain::LouvainConfig;
use gala::core::metrics::nmi;
use gala::graph::generators::sbm::PlantedPartition;

fn main() {
    let gt = PlantedPartition {
        num_communities: 12,
        community_size: 50,
        internal_degree: 6.0,
        mixing: 0.3,
    }
    .generate(33);
    println!(
        "noisy planted graph: {} vertices, {} edges, mixing 0.3\n",
        gt.graph.num_vertices(),
        gt.graph.num_edges()
    );

    let result = consensus(
        &gt.graph,
        ConsensusConfig {
            runs: 8,
            threshold: 0.5,
            max_rounds: 4,
            base: LouvainConfig::default(),
        },
    );
    println!(
        "consensus: {} rounds, converged = {}, Q = {:.4}",
        result.rounds, result.converged, result.modularity
    );
    println!(
        "NMI vs planted truth: {:.4}",
        nmi(&result.partition, &gt.ground_truth)
    );
    println!(
        "{} communities (planted: 12)",
        result.partition.num_communities()
    );
}
