//! Hierarchical community structure of a web-like graph: run the full
//! multi-round Louvain on the uk-2002 stand-in (near-perfect community
//! structure, paper Q ≈ 0.99) and walk the hierarchy it builds.
//!
//! ```sh
//! cargo run --release --example web_hierarchy
//! ```

use gala::core::louvain::{Louvain, LouvainConfig};
use gala::core::metrics::summarize;
use gala::prelude::{Dataset, Scale};

fn main() {
    let graph = Dataset::UK.generate(Scale::Test);
    println!(
        "web graph stand-in: {} vertices, {} edges\n",
        graph.num_vertices(),
        graph.num_edges()
    );
    let result = Louvain::new(LouvainConfig::default()).run(&graph);

    println!("hierarchy rounds:");
    for round in &result.rounds {
        println!(
            "  round {}: {:>6} vertices, {:>2} supersteps, Q = {:.5}",
            round.round,
            round.num_vertices,
            round.iterations.len(),
            round.modularity
        );
    }
    let summary = summarize(&result.partition);
    println!(
        "\nfinal: Q = {:.5}, {} communities (sizes {}..{}, mean {:.1})",
        result.modularity,
        summary.num_communities,
        summary.min_size,
        summary.max_size,
        summary.mean_size
    );
    println!("paper reports Q = 0.99056 on the real uk-2002.");
    assert!(
        result.modularity > 0.9,
        "web stand-in should be near-modular"
    );
}
