//! Cross-kernel agreement: on unit-weight graphs every DecideAndMove
//! kernel (CPU reference, warp shuffle, block hash with all three tables,
//! sort-based, and the workload-aware dispatcher) must produce identical
//! decisions — they are different *memory layouts* of the same function.

use gala::core::kernels::hashtable::{HashConfig, HashTableKind};
use gala::core::kernels::{self, KernelKind};
use gala::core::state::BspState;
use gala::core::weight::{self, WeightUpdateMode};
use gala::graph::datasets::{Dataset, Scale};
use gala::graph::Graph;

fn all_kernel_kinds() -> Vec<KernelKind> {
    vec![
        KernelKind::Cpu,
        KernelKind::Shuffle,
        KernelKind::Hash(HashConfig {
            kind: HashTableKind::GlobalOnly,
            shared_buckets: 0,
        }),
        KernelKind::Hash(HashConfig {
            kind: HashTableKind::Unified,
            shared_buckets: 64,
        }),
        KernelKind::Hash(HashConfig {
            kind: HashTableKind::Hierarchical,
            shared_buckets: 64,
        }),
        KernelKind::Sort,
        KernelKind::Replicated,
        KernelKind::WorkloadAware(HashConfig::default()),
    ]
}

/// Drives several supersteps with the CPU kernel and checks that every
/// other kernel agrees with it on every superstep's decisions.
fn assert_agreement_over_iterations(graph: &Graph, supersteps: usize) {
    let mut state = BspState::new(graph);
    for step in 0..supersteps {
        let active = vec![true; graph.num_vertices()];
        let reference = kernels::decide(KernelKind::Cpu, graph, &state, &active);
        for kind in all_kernel_kinds() {
            let out = kernels::decide(kind, graph, &state, &active);
            assert_eq!(
                out.next_comm, reference.next_comm,
                "{kind:?} diverged at superstep {step}"
            );
        }
        let summary = state.apply_moves(graph, &reference.next_comm);
        if summary.num_moved() == 0 {
            break;
        }
        weight::update(WeightUpdateMode::Delta, graph, &mut state, &summary);
    }
}

#[test]
fn kernels_agree_on_lj_standin() {
    let g = Dataset::LJ.generate(Scale::Test);
    assert_agreement_over_iterations(&g, 4);
}

#[test]
fn kernels_agree_on_heavy_tailed_tw_standin() {
    // R-MAT hubs exercise the multi-chunk shuffle path and large tables.
    let g = Dataset::TW.generate(Scale::Test);
    assert_agreement_over_iterations(&g, 3);
}

#[test]
fn kernels_agree_on_dense_hw_standin() {
    let g = Dataset::HW.generate(Scale::Test);
    assert_agreement_over_iterations(&g, 3);
}

#[test]
fn kernels_agree_with_partial_active_sets() {
    let g = Dataset::OR.generate(Scale::Test);
    let state = BspState::new(&g);
    // Odd-indexed vertices only.
    let active: Vec<bool> = (0..g.num_vertices()).map(|v| v % 2 == 1).collect();
    let reference = kernels::decide(KernelKind::Cpu, &g, &state, &active);
    for kind in all_kernel_kinds() {
        let out = kernels::decide(kind, &g, &state, &active);
        assert_eq!(out.next_comm, reference.next_comm, "{kind:?} diverged");
        // Inactive vertices must be untouched.
        for v in (0..g.num_vertices()).step_by(2) {
            assert_eq!(out.next_comm[v], state.comm[v]);
        }
    }
}
