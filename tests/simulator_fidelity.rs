//! Integration tests for the GPU-simulation layer's *fidelity claims*: the
//! cost-model orderings that the paper's figures depend on must emerge from
//! the implemented designs, not be hard-coded anywhere.

use gala::core::kernels::hashtable::{HashConfig, HashTableKind};
use gala::core::kernels::{self, KernelKind};
use gala::core::louvain::{Louvain, LouvainConfig};
use gala::core::pruning::PruningKind;
use gala::core::state::BspState;
use gala::core::weight::WeightUpdateMode;
use gala::gpu::memory::CostModel;
use gala::graph::datasets::{Dataset, Scale};

fn cycles(kind: KernelKind, g: &gala::graph::Graph, active: &[bool]) -> f64 {
    let state = BspState::new(g);
    let out = kernels::decide(kind, g, &state, active);
    CostModel::default().cycles(&out.tally)
}

#[test]
fn shuffle_beats_hash_on_small_degrees() {
    // Fig 9(a): registers beat any hashtable for warp-sized neighborhoods.
    let g = Dataset::LJ.generate(Scale::Test);
    let small: Vec<bool> = (0..g.num_vertices())
        .map(|v| (1..32).contains(&g.degree(v as u32)))
        .collect();
    let shuffle = cycles(KernelKind::Shuffle, &g, &small);
    let hier = cycles(KernelKind::Hash(HashConfig::default()), &g, &small);
    let glob = cycles(
        KernelKind::Hash(HashConfig {
            kind: HashTableKind::GlobalOnly,
            shared_buckets: 0,
        }),
        &g,
        &small,
    );
    assert!(shuffle < hier, "shuffle {shuffle} vs hierarchical {hier}");
    assert!(hier < glob, "hierarchical {hier} vs global {glob}");
}

#[test]
fn hierarchical_table_beats_unified_beats_global_on_hubs() {
    // Fig 9(b): the three hashtable designs on the heavy vertices.
    let g = Dataset::TW.generate(Scale::Test);
    let hubs: Vec<bool> = (0..g.num_vertices())
        .map(|v| g.degree(v as u32) >= 64)
        .collect();
    assert!(hubs.iter().any(|&h| h), "TW stand-in must have hubs");
    let mk = |kind, s| {
        cycles(
            KernelKind::Hash(HashConfig {
                kind,
                shared_buckets: s,
            }),
            &g,
            &hubs,
        )
    };
    let hier = mk(HashTableKind::Hierarchical, 256);
    let unif = mk(HashTableKind::Unified, 256);
    let glob = mk(HashTableKind::GlobalOnly, 0);
    assert!(hier < unif, "hierarchical {hier} vs unified {unif}");
    assert!(unif < glob, "unified {unif} vs global-only {glob}");
}

#[test]
fn sort_kernel_is_the_most_expensive() {
    // Fig 5's mechanism: the cuGraph-style sort strategy moves each pair
    // O(log d) times through global memory.
    let g = Dataset::OR.generate(Scale::Test);
    let active = vec![true; g.num_vertices()];
    let sort = cycles(KernelKind::Sort, &g, &active);
    let hash = cycles(KernelKind::Hash(HashConfig::default()), &g, &active);
    let gala = cycles(
        KernelKind::WorkloadAware(HashConfig::default()),
        &g,
        &active,
    );
    assert!(sort > hash, "sort {sort} vs hash {hash}");
    assert!(gala <= hash * 1.01, "workload-aware {gala} vs hash {hash}");
}

#[test]
fn mg_pruning_reduces_total_simulated_work() {
    // Fig 6's MG bar: same kernel, pruned vs unpruned, over a full phase 1.
    let g = Dataset::LJ.generate(Scale::Test);
    let run = |pruning| {
        let (_, stats) = Louvain::new(LouvainConfig {
            pruning,
            weight_update: WeightUpdateMode::Delta,
            ..LouvainConfig::default()
        })
        .run_phase1(&g);
        CostModel::default().cycles(&stats.total_tally())
    };
    let base = run(PruningKind::None);
    let mg = run(PruningKind::Gain);
    assert!(
        mg < base,
        "MG pruning did not reduce simulated work: {mg} vs {base}"
    );
}

#[test]
fn workload_aware_dispatch_beats_pure_hash_end_to_end() {
    // Fig 6's MM bar on a graph with many small-degree vertices.
    let g = Dataset::LJ.generate(Scale::Test);
    let run = |kernel| {
        let (_, stats) = Louvain::new(LouvainConfig {
            kernel,
            ..LouvainConfig::default()
        })
        .run_phase1(&g);
        CostModel::default().cycles(&stats.total_tally())
    };
    let mm = run(KernelKind::WorkloadAware(HashConfig::default()));
    let pure_global = run(KernelKind::Hash(HashConfig {
        kind: HashTableKind::GlobalOnly,
        shared_buckets: 0,
    }));
    assert!(mm < pure_global, "MM {mm} vs global hash {pure_global}");
}
