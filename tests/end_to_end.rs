//! End-to-end integration tests: GALA recovers planted community structure
//! on realistic generated graphs and behaves like the paper's system.

use gala::core::louvain::{Louvain, LouvainConfig};
use gala::core::metrics::nmi;
use gala::core::modularity::modularity;
use gala::core::pruning::PruningKind;
use gala::graph::datasets::{Dataset, Scale};
use gala::graph::generators::lfr::LfrParams;
use gala::graph::generators::sbm::PlantedPartition;

#[test]
fn recovers_planted_partition_with_high_nmi() {
    let gt = PlantedPartition {
        num_communities: 20,
        community_size: 50,
        internal_degree: 10.0,
        mixing: 0.15,
    }
    .generate(3);
    let result = Louvain::new(LouvainConfig::default()).run(&gt.graph);
    let score = nmi(&result.partition, &gt.ground_truth);
    assert!(score > 0.85, "NMI = {score}");
    assert!(result.modularity > 0.5);
}

#[test]
fn recovers_lfr_communities() {
    let gt = LfrParams {
        num_vertices: 2_000,
        min_degree: 8,
        max_degree: 40,
        degree_exponent: 2.5,
        min_community: 30,
        max_community: 150,
        community_exponent: 1.5,
        mixing: 0.2,
    }
    .generate(5);
    let result = Louvain::new(LouvainConfig::default()).run(&gt.graph);
    let score = nmi(&result.partition, &gt.ground_truth);
    assert!(score > 0.7, "NMI = {score}");
}

#[test]
fn hierarchy_rounds_never_lose_modularity() {
    let g = Dataset::LJ.generate(Scale::Test);
    let result = Louvain::new(LouvainConfig::default()).run(&g);
    let mut prev = f64::NEG_INFINITY;
    for round in &result.rounds {
        assert!(
            round.modularity >= prev - 1e-9,
            "round {} lost modularity: {} -> {}",
            round.round,
            prev,
            round.modularity
        );
        prev = round.modularity;
    }
    assert!(result.rounds.len() >= 2, "expected multi-round hierarchy");
}

#[test]
fn dataset_standins_have_paper_like_modularity_ordering() {
    // Exact Q values differ from the originals, but the ordering that
    // drives the paper's analysis must hold: UK (web) is near-perfectly
    // modular, TW (twitter) is by far the weakest.
    let runner = Louvain::new(LouvainConfig::default());
    let q = |d: Dataset| runner.run(&d.generate(Scale::Test)).modularity;
    let (uk, tw, lj) = (q(Dataset::UK), q(Dataset::TW), q(Dataset::LJ));
    assert!(uk > 0.9, "UK stand-in q = {uk}");
    assert!(tw < 0.6, "TW stand-in q = {tw}");
    assert!(lj > tw, "LJ ({lj}) should beat TW ({tw})");
    assert!(uk > lj, "UK ({uk}) should beat LJ ({lj})");
}

#[test]
fn final_modularity_is_consistent_with_partition() {
    for d in [Dataset::OR, Dataset::EW] {
        let g = d.generate(Scale::Test);
        let result = Louvain::new(LouvainConfig::default()).run(&g);
        let q = modularity(&g, &result.partition);
        assert!(
            (q - result.modularity).abs() < 1e-9,
            "{}: reported {} vs recomputed {}",
            d.abbr(),
            result.modularity,
            q
        );
    }
}

#[test]
fn mg_pruning_matches_baseline_on_every_standin() {
    // Theorem 6 at system level: MG never changes the result's quality.
    for d in [Dataset::LJ, Dataset::UK, Dataset::HW] {
        let g = d.generate(Scale::Test);
        let base = Louvain::new(LouvainConfig {
            pruning: PruningKind::None,
            ..LouvainConfig::default()
        })
        .run(&g);
        let mg = Louvain::new(LouvainConfig {
            pruning: PruningKind::Gain,
            ..LouvainConfig::default()
        })
        .run(&g);
        assert!(
            (base.modularity - mg.modularity).abs() < 1e-9,
            "{}: baseline {} vs MG {}",
            d.abbr(),
            base.modularity,
            mg.modularity
        );
    }
}

#[test]
fn relaxed_pruning_cost_is_bounded() {
    // RM may lose modularity, but only a little (paper: ~0.001 average).
    let g = Dataset::LJ.generate(Scale::Test);
    let base = Louvain::new(LouvainConfig {
        pruning: PruningKind::None,
        ..LouvainConfig::default()
    })
    .run(&g);
    let rm = Louvain::new(LouvainConfig {
        pruning: PruningKind::Relaxed,
        ..LouvainConfig::default()
    })
    .run(&g);
    assert!(base.modularity - rm.modularity < 0.02, "RM lost too much");
}
