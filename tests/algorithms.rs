//! Cross-algorithm integration tests: the three families of the paper's
//! Section 1 taxonomy (modularity-based GALA/Louvain, Leiden, label
//! propagation) on shared ground-truth workloads.

use gala::core::label_prop::{label_propagation, LabelPropConfig};
use gala::core::leiden::{communities_are_connected, leiden, LeidenConfig};
use gala::core::louvain::{Louvain, LouvainConfig};
use gala::core::metrics::nmi;
use gala::core::validation::{adjusted_rand_index, coverage, mean_conductance};
use gala::graph::generators::lfr::LfrParams;
use gala::graph::generators::sbm::PlantedPartition;

fn strong_lfr() -> gala::graph::generators::sbm::GroundTruthGraph {
    LfrParams {
        num_vertices: 2_000,
        min_degree: 8,
        max_degree: 40,
        degree_exponent: 2.5,
        min_community: 40,
        max_community: 150,
        community_exponent: 1.5,
        mixing: 0.15,
    }
    .generate(77)
}

#[test]
fn all_families_recover_strong_communities() {
    let gt = strong_lfr();
    let gala = Louvain::new(LouvainConfig::default())
        .run(&gt.graph)
        .partition;
    let leid = leiden(&gt.graph, LeidenConfig::default()).partition;
    let lpa = label_propagation(&gt.graph, LabelPropConfig::default()).partition;
    for (name, p) in [("gala", &gala), ("leiden", &leid), ("lpa", &lpa)] {
        let score = nmi(p, &gt.ground_truth);
        assert!(score > 0.75, "{name} NMI = {score}");
        let ari = adjusted_rand_index(p, &gt.ground_truth);
        assert!(ari > 0.5, "{name} ARI = {ari}");
    }
}

#[test]
fn leiden_guarantee_holds_where_it_matters() {
    // A graph with enough noise that greedy merging is tempted into
    // badly-connected communities.
    let gt = PlantedPartition {
        num_communities: 12,
        community_size: 25,
        internal_degree: 5.0,
        mixing: 0.35,
    }
    .generate(9);
    let leid = leiden(&gt.graph, LeidenConfig::default());
    assert!(communities_are_connected(&gt.graph, &leid.partition));
}

#[test]
fn validation_metrics_rank_partitions_sensibly() {
    let gt = strong_lfr();
    let good = Louvain::new(LouvainConfig::default())
        .run(&gt.graph)
        .partition;
    // A deliberately shuffled partition: same sizes, wrong members.
    let n = gt.graph.num_vertices();
    let bad =
        gala::graph::Partition::from_assignment((0..n).map(|v| ((v * 7919) % 40) as u32).collect());
    assert!(coverage(&gt.graph, &good) > coverage(&gt.graph, &bad));
    assert!(mean_conductance(&gt.graph, &good) < mean_conductance(&gt.graph, &bad));
    assert!(
        adjusted_rand_index(&good, &gt.ground_truth) > adjusted_rand_index(&bad, &gt.ground_truth)
    );
}

#[test]
fn gala_resolution_sweep_is_monotone_in_community_count() {
    let gt = strong_lfr();
    let count = |gamma: f64| {
        Louvain::new(LouvainConfig {
            resolution: gamma,
            ..LouvainConfig::default()
        })
        .run(&gt.graph)
        .partition
        .num_communities()
    };
    let low = count(0.5);
    let mid = count(1.0);
    let high = count(3.0);
    assert!(low <= mid, "gamma 0.5 -> {low}, 1.0 -> {mid}");
    assert!(mid <= high, "gamma 1.0 -> {mid}, 3.0 -> {high}");
}
