//! The two scenarios of the paper's Figure 2 / Example 1, built by hand:
//!
//! * Scenario 1 — the neighbors of `v` are unmoved, but a *non-neighbor*
//!   left one of the neighboring communities, changing its total weight so
//!   that `v` should now move. RM (which only looks at neighbor movement)
//!   misclassifies `v` as inactive — a false negative. MG keeps `v` active.
//! * Scenario 2 — one neighbor of `v` in a *different* community moved, but
//!   staying is clearly optimal for `v`. SM and RM misclassify `v` as
//!   active — a false positive. MG proves `v` unmoved and prunes it.

use gala::core::kernels::cpu;
use gala::core::pruning::{classify, PruningKind};
use gala::core::state::BspState;
use gala::graph::{Graph, GraphBuilder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0)
}

/// Scenario 1 (Lemma 4's counterexample). Layout:
///
/// * `v = 0` with two symmetric neighbor pairs: {1, 2} = community A and
///   {3, 4} = community B, each connected to `v` with weight 1
///   (`d_A(v) = d_B(v) = 2`).
/// * `v` currently belongs to A, which carries extra internal weight
///   (edge 1–2), so `D_V(A) − d(v) = 4`.
/// * Vertex 5 used to be in B and just left for its own community; with it
///   gone `D_V(B) = 2.5 < 4`: by Eq. 2, moving to B now beats staying —
///   even though none of `v`'s neighbors moved.
fn scenario1() -> (Graph, BspState) {
    let mut b = GraphBuilder::new(6);
    b.add_edge(0, 1, 1.0);
    b.add_edge(0, 2, 1.0);
    b.add_edge(0, 3, 1.0);
    b.add_edge(0, 4, 1.0);
    b.add_edge(1, 2, 1.0); // inside A
    b.add_edge(5, 3, 0.5); // 5's old tie to B
    let g = b.build();
    let mut s = BspState::new(&g);
    // Communities: A = 1 (members 0,1,2), B = 3 (members 3,4), 5 alone.
    // (Vertex 5 *just moved out* of B in the previous superstep.)
    let comm = vec![1u32, 1, 1, 3, 3, 5];
    s.comm = comm;
    s.comm_size = vec![0, 3, 0, 2, 0, 1];
    s.d_tot = vec![0.0; 6];
    for v in 0..6u32 {
        s.d_tot[s.comm[v as usize] as usize] += g.degree_w(v);
    }
    s.recompute_d_self(&g);
    s.min_d_tot = s
        .d_tot
        .iter()
        .zip(&s.comm_size)
        .filter(|&(_, &n)| n > 0)
        .map(|(&d, _)| d)
        .fold(f64::INFINITY, f64::min);
    s.moved = vec![false, false, false, false, false, true]; // only 5 moved
    s.comm_changed = vec![false, false, false, true, false, true]; // B lost 5
    s.iteration = 1;
    (g, s)
}

#[test]
fn scenario1_ground_truth_v_moves() {
    let (g, s) = scenario1();
    // m2 = 11; stay = 2 − 4·4/11 ≈ 0.545; move-to-B = 2 − 4·2.5/11 ≈ 1.09.
    let next = cpu::decide_one(0, &g, &s);
    assert_eq!(next, 3, "v should defect to community B");
}

#[test]
fn scenario1_rm_produces_false_negative_mg_does_not() {
    let (g, s) = scenario1();
    let rm = classify(PruningKind::Relaxed, &g, &s, &mut rng());
    let mg = classify(PruningKind::Gain, &g, &s, &mut rng());
    // Neither v nor its neighbors moved -> RM wrongly prunes v.
    assert!(
        !rm[0],
        "RM should misclassify v as inactive (the paper's FN)"
    );
    // MG sees the changed community totals through the gain bound.
    assert!(mg[0], "MG must keep v active");
}

/// Scenario 2. Layout: `v = 0` deep inside a 5-clique (community K), plus a
/// single weak tie to vertex 5, which just hopped between two outside
/// communities. Staying is clearly optimal for `v`.
fn scenario2() -> (Graph, BspState) {
    let mut b = GraphBuilder::new(8);
    for i in 0..5u32 {
        for j in (i + 1)..5 {
            b.add_edge(i, j, 1.0);
        }
    }
    b.add_edge(0, 5, 0.1); // weak external tie
    b.add_edge(5, 6, 1.0);
    b.add_edge(6, 7, 1.0);
    let g = b.build();
    let mut s = BspState::new(&g);
    // K = community 0 (members 0..5); 5 just moved from its own community
    // into community 6 (with vertices 6, 7).
    s.comm = vec![0, 0, 0, 0, 0, 6, 6, 6];
    s.comm_size = vec![5, 0, 0, 0, 0, 0, 3, 0];
    s.d_tot = vec![0.0; 8];
    for v in 0..8u32 {
        s.d_tot[s.comm[v as usize] as usize] += g.degree_w(v);
    }
    s.recompute_d_self(&g);
    s.min_d_tot = s
        .d_tot
        .iter()
        .zip(&s.comm_size)
        .filter(|&(_, &n)| n > 0)
        .map(|(&d, _)| d)
        .fold(f64::INFINITY, f64::min);
    s.moved = vec![false, false, false, false, false, true, false, false];
    s.comm_changed = vec![false, false, false, false, false, true, true, false];
    s.iteration = 1;
    (g, s)
}

#[test]
fn scenario2_ground_truth_v_stays() {
    let (g, s) = scenario2();
    assert_eq!(cpu::decide_one(0, &g, &s), 0, "v must stay in its clique");
}

#[test]
fn scenario2_sm_and_rm_false_positive_mg_prunes() {
    let (g, s) = scenario2();
    let sm = classify(PruningKind::Strict, &g, &s, &mut rng());
    let rm = classify(PruningKind::Relaxed, &g, &s, &mut rng());
    let mg = classify(PruningKind::Gain, &g, &s, &mut rng());
    // Neighbor 5 moved: both movement-based strategies wake v up.
    assert!(sm[0], "SM misclassifies v as active (the paper's FP)");
    assert!(rm[0], "RM misclassifies v as active (the paper's FP)");
    // MG's bound: d_self = 4, external weight 0.1 -> provably unmoved.
    assert!(!mg[0], "MG must prune v");
}

#[test]
fn mg_plus_rm_combines_both_angles() {
    // In scenario 2, MG+RM prunes v (MG side); in a quiet graph it also
    // prunes everything RM prunes.
    let (g, s) = scenario2();
    let mgrm = classify(PruningKind::GainRelaxed, &g, &s, &mut rng());
    assert!(!mgrm[0]);
    // ... and inherits RM's unsoundness in scenario 1.
    let (g1, s1) = scenario1();
    let mgrm1 = classify(PruningKind::GainRelaxed, &g1, &s1, &mut rng());
    assert!(!mgrm1[0], "MG+RM accepts RM's false negative by design");
}
