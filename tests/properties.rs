//! Property-based tests over random graphs: the invariants the GALA design
//! rests on must hold for *any* input, not just the fixtures.

use gala::core::kernels::hashtable::{HashConfig, HashTableKind};
use gala::core::kernels::{self, cpu, KernelKind};
use gala::core::louvain::{Louvain, LouvainConfig};
use gala::core::metrics::nmi;
use gala::core::modularity::modularity;
use gala::core::multi_gpu::{run_phase1, MultiGpuConfig};
use gala::core::pruning::{classify, PruningKind};
use gala::core::state::BspState;
use gala::core::weight::{self, WeightUpdateMode};
use gala::graph::coarsen::coarsen;
use gala::graph::{Graph, GraphBuilder, Partition};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: a random undirected unit-weight graph with up to `n` vertices
/// and `m` candidate edges (duplicates merge, so weights stay integral).
fn arb_graph(n: usize, m: usize) -> impl Strategy<Value = Graph> {
    (
        2..n,
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..m),
    )
        .prop_map(|(nv, edges)| {
            let mut b = GraphBuilder::new(nv);
            for (u, v) in edges {
                let (u, v) = (u % nv as u32, v % nv as u32);
                if u != v {
                    b.add_edge(u, v, 1.0);
                }
            }
            b.build()
        })
}

/// Advances `steps` full (unpruned) BSP supersteps, keeping d_self exact.
fn advance(graph: &Graph, steps: usize) -> BspState {
    let mut state = BspState::new(graph);
    for _ in 0..steps {
        let active = vec![true; graph.num_vertices()];
        let out = kernels::decide(KernelKind::Cpu, graph, &state, &active);
        let summary = state.apply_moves(graph, &out.next_comm);
        weight::update(WeightUpdateMode::Delta, graph, &mut state, &summary);
        if summary.num_moved() == 0 {
            break;
        }
    }
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 6 as executable spec: a vertex MG prunes is never one that a
    /// full DecideAndMove would move for a strictly positive gain. (Zero-
    /// gain tie-break moves are modularity-neutral and allowed to be
    /// suppressed; we detect them by re-scoring the proposed move.)
    #[test]
    fn mg_pruning_is_sound(graph in arb_graph(40, 160), steps in 0usize..4) {
        let state = advance(&graph, steps);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let active = classify(PruningKind::Gain, &graph, &state, &mut rng);
        if state.iteration == 0 {
            // classify returns all-active before any history: trivially sound
            prop_assert!(active.iter().all(|&a| a));
            return Ok(());
        }
        let truth = cpu::decide(&graph, &state, &vec![true; graph.num_vertices()]);
        for (v, &kept_active) in active.iter().enumerate() {
            if kept_active || truth.next_comm[v] == state.comm[v] {
                continue;
            }
            // MG pruned v but the kernel wanted to move it: verify the move
            // is a zero-gain tie-break, i.e. modularity is unchanged.
            let mut p1 = state.partition();
            let q_before = modularity(&graph, &p1);
            p1.assign(v as u32, truth.next_comm[v]);
            let q_after = modularity(&graph, &p1);
            prop_assert!(
                q_after - q_before <= 1e-9,
                "MG false negative at {v}: ΔQ = {}",
                q_after - q_before
            );
        }
    }

    /// SM soundness (Lemma 3): same contract as MG.
    #[test]
    fn sm_pruning_is_sound(graph in arb_graph(30, 120), steps in 1usize..4) {
        let state = advance(&graph, steps);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let active = classify(PruningKind::Strict, &graph, &state, &mut rng);
        let truth = cpu::decide(&graph, &state, &vec![true; graph.num_vertices()]);
        for (v, &kept_active) in active.iter().enumerate() {
            if !kept_active {
                prop_assert_eq!(
                    truth.next_comm[v], state.comm[v],
                    "SM false negative at {}", v
                );
            }
        }
    }

    /// Delta weight maintenance is exact: after any superstep it matches a
    /// full recomputation bit for bit (unit weights → exact f64 sums).
    #[test]
    fn delta_update_equals_naive(graph in arb_graph(40, 200), steps in 1usize..5) {
        let mut state = BspState::new(&graph);
        for _ in 0..steps {
            let active = vec![true; graph.num_vertices()];
            let out = kernels::decide(KernelKind::Cpu, &graph, &state, &active);
            let summary = state.apply_moves(&graph, &out.next_comm);
            weight::update(WeightUpdateMode::Delta, &graph, &mut state, &summary);
            let mut reference = state.clone();
            reference.recompute_d_self(&graph);
            prop_assert_eq!(&state.d_self, &reference.d_self);
            if summary.num_moved() == 0 { break; }
        }
    }

    /// The O(n) incremental modularity equals the from-scratch O(m) one.
    #[test]
    fn state_modularity_matches_scratch(graph in arb_graph(40, 200), steps in 0usize..5) {
        let state = advance(&graph, steps);
        let q_state = state.modularity(&graph);
        let q_scratch = modularity(&graph, &state.partition());
        prop_assert!((q_state - q_scratch).abs() < 1e-9,
            "state {} vs scratch {}", q_state, q_scratch);
    }

    /// Every kernel agrees with the CPU reference on arbitrary graphs.
    #[test]
    fn kernels_agree(graph in arb_graph(36, 150), steps in 0usize..3) {
        let state = advance(&graph, steps);
        let active = vec![true; graph.num_vertices()];
        let reference = cpu::decide(&graph, &state, &active);
        for kind in [
            KernelKind::Shuffle,
            KernelKind::Sort,
            KernelKind::Replicated,
            KernelKind::Hash(HashConfig { kind: HashTableKind::GlobalOnly, shared_buckets: 0 }),
            KernelKind::Hash(HashConfig { kind: HashTableKind::Unified, shared_buckets: 16 }),
            KernelKind::Hash(HashConfig { kind: HashTableKind::Hierarchical, shared_buckets: 16 }),
            KernelKind::WorkloadAware(HashConfig::default()),
        ] {
            let out = kernels::decide(kind, &graph, &state, &active);
            prop_assert_eq!(&out.next_comm, &reference.next_comm, "{:?}", kind);
        }
    }

    /// Multi-device execution is results-equivalent to single-device.
    #[test]
    fn multi_device_equals_single(graph in arb_graph(32, 120), devices in 2usize..6) {
        let single = run_phase1(&graph, MultiGpuConfig::default());
        let multi = run_phase1(&graph, MultiGpuConfig {
            num_devices: devices,
            ..MultiGpuConfig::default()
        });
        prop_assert_eq!(single.partition, multi.partition);
    }

    /// Coarsening preserves total weight and the induced modularity.
    #[test]
    fn coarsen_preserves_weight_and_q(graph in arb_graph(30, 120), steps in 1usize..3) {
        let state = advance(&graph, steps);
        let p = state.partition();
        let c = coarsen(&graph, &p);
        prop_assert!((c.graph.total_weight() - graph.total_weight()).abs() < 1e-9);
        let q_fine = modularity(&graph, &p);
        let q_coarse = modularity(&c.graph, &Partition::singletons(c.num_communities));
        prop_assert!((q_fine - q_coarse).abs() < 1e-9,
            "fine {} vs coarse {}", q_fine, q_coarse);
    }

    /// Full Louvain output invariants: Q within bounds, Q matches the
    /// partition, supersteps never decrease modularity.
    #[test]
    fn louvain_invariants(graph in arb_graph(30, 120)) {
        let result = Louvain::new(LouvainConfig::default()).run(&graph);
        prop_assert!(result.modularity >= -0.5 - 1e-9);
        prop_assert!(result.modularity <= 1.0 + 1e-9);
        let q = modularity(&graph, &result.partition);
        prop_assert!((q - result.modularity).abs() < 1e-9);
        for round in &result.rounds {
            // Rounds end at their best-seen modularity; supersteps may dip.
            let peak = round
                .iterations
                .iter()
                .map(|i| i.modularity)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(round.modularity >= peak - 1e-9);
        }
    }

    /// NMI axioms on random partitions: symmetric, in [0,1], 1 on self.
    #[test]
    fn nmi_axioms(labels_a in proptest::collection::vec(0u32..6, 2..40),
                  labels_b_seed in 0u32..6) {
        let n = labels_a.len();
        let a = Partition::from_assignment(labels_a.clone());
        let b = Partition::from_assignment(
            labels_a.iter().map(|&x| (x + labels_b_seed) % 6).collect::<Vec<_>>(),
        );
        prop_assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
        let ab = nmi(&a, &b);
        let ba = nmi(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        // Relabeling is a bijection here, so NMI must be exactly 1.
        prop_assert!((ab - 1.0).abs() < 1e-9, "relabel nmi = {}, n = {}", ab, n);
    }
}
